"""Isolated case execution: one subprocess per case, with retry/backoff.

Each case runs in a fresh ``python -m repro.fuzz.worker`` process so an
analyzer crash, a runaway allocation, or a hang is contained and
classified instead of killing the campaign.  The runner distinguishes

* **verdicts** — the worker exited 0 with a JSON payload
  (sound / unsound / degraded / rejected),
* **crashes** — nonzero exit; the stderr traceback is signed by
  :func:`repro.fuzz.triage.crash_signature`,
* **timeouts** — the per-case wall limit expired and the process was
  killed,
* **infrastructure failures** — spawn errors (``OSError``) or SIGKILL
  (the OOM killer's signature), retried with exponential backoff before
  being surfaced, so transient host pressure does not masquerade as an
  analyzer bug.

The in-process variant (:class:`InProcessRunner`) runs the identical
worker code path in this interpreter — faster and easier to debug, used
by the reducer and ``--in-process`` replay.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Optional

from .case import CaseSpec
from .triage import crash_signature

__all__ = ["CaseOutcome", "InProcessRunner", "SubprocessRunner"]

#: Exit statuses treated as infrastructure failures (retry, don't triage):
#: SIGKILL is what the kernel OOM killer and batch schedulers deliver.
_INFRA_RETURNCODES = (-9,)


@dataclass
class CaseOutcome:
    """What one isolated execution of a case produced."""

    outcome: str                      # sound/unsound/degraded/rejected/
                                      # crash/timeout
    payload: Optional[Dict] = None    # worker JSON (verdicts only)
    signature: Optional[str] = None   # triage signature (failures only)
    stderr_tail: str = ""
    returncode: Optional[int] = None
    attempts: int = 1
    infra_retries: int = 0
    wall_time_s: float = 0.0


def _stderr_tail(text: str, limit: int = 4000) -> str:
    return text[-limit:] if len(text) > limit else text


class SubprocessRunner:
    """Runs case specs in isolated worker subprocesses."""

    def __init__(self, timeout_s: Optional[float] = 120.0,
                 infra_retries: int = 2, backoff_s: float = 0.5,
                 python: Optional[str] = None):
        self.timeout_s = timeout_s
        self.infra_retries = infra_retries
        self.backoff_s = backoff_s
        self.python = python or sys.executable

    def _env(self) -> Dict[str, str]:
        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else src_dir + os.pathsep + existing)
        return env

    def run_spec(self, spec: CaseSpec) -> CaseOutcome:
        job = json.dumps({"spec": spec.to_json()})
        env = self._env()
        started = time.perf_counter()
        retries = 0
        while True:
            attempts = retries + 1
            try:
                proc = subprocess.run(
                    [self.python, "-m", "repro.fuzz.worker"],
                    input=job, capture_output=True, text=True,
                    timeout=self.timeout_s, env=env)
            except subprocess.TimeoutExpired as exc:
                stderr = exc.stderr or ""
                if isinstance(stderr, bytes):
                    stderr = stderr.decode("utf-8", "replace")
                return CaseOutcome(
                    outcome="timeout",
                    signature=f"timeout|{self.timeout_s}s|",
                    stderr_tail=_stderr_tail(stderr),
                    attempts=attempts, infra_retries=retries,
                    wall_time_s=time.perf_counter() - started)
            except OSError as exc:
                # Could not even spawn the worker: host-level trouble.
                if retries < self.infra_retries:
                    time.sleep(self.backoff_s * (2 ** retries))
                    retries += 1
                    continue
                return CaseOutcome(
                    outcome="crash",
                    signature=f"infra|spawn|{type(exc).__name__}",
                    stderr_tail=str(exc), attempts=attempts,
                    infra_retries=retries,
                    wall_time_s=time.perf_counter() - started)
            if proc.returncode == 0:
                try:
                    payload = json.loads(proc.stdout)
                except (json.JSONDecodeError, ValueError):
                    return CaseOutcome(
                        outcome="crash",
                        signature="infra|invalid-worker-output|",
                        stderr_tail=_stderr_tail(proc.stderr),
                        returncode=0, attempts=attempts,
                        infra_retries=retries,
                        wall_time_s=time.perf_counter() - started)
                return CaseOutcome(
                    outcome=payload.get("outcome", "crash"),
                    payload=payload, returncode=0, attempts=attempts,
                    infra_retries=retries,
                    wall_time_s=time.perf_counter() - started)
            if (proc.returncode in _INFRA_RETURNCODES
                    and retries < self.infra_retries):
                time.sleep(self.backoff_s * (2 ** retries))
                retries += 1
                continue
            return CaseOutcome(
                outcome="crash",
                signature=crash_signature(proc.stderr),
                stderr_tail=_stderr_tail(proc.stderr),
                returncode=proc.returncode, attempts=attempts,
                infra_retries=retries,
                wall_time_s=time.perf_counter() - started)


class InProcessRunner:
    """Runs the identical worker code path inside this interpreter.

    Crashes are caught and signed from the live traceback — the same
    :func:`crash_signature` format the subprocess path derives from
    worker stderr, so signatures agree across isolation modes.
    """

    def run_spec(self, spec: CaseSpec) -> CaseOutcome:
        from .worker import execute_spec

        started = time.perf_counter()
        try:
            payload = execute_spec(spec)
        except Exception:
            text = traceback.format_exc()
            return CaseOutcome(
                outcome="crash", signature=crash_signature(text),
                stderr_tail=_stderr_tail(text),
                wall_time_s=time.perf_counter() - started)
        return CaseOutcome(
            outcome=payload.get("outcome", "crash"), payload=payload,
            returncode=0, wall_time_s=time.perf_counter() - started)
