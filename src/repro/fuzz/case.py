"""Fuzz case specifications: the unit of generation, replay and reduction.

A :class:`CaseSpec` is a small, JSON-serializable recipe: family-spec
parameters for :func:`repro.synth.generate_program` plus a list of
mutation descriptors (see :mod:`.mutators`) and the oracle budget.  The
spec — not the generated C text — is what the corpus stores, what
``--replay`` re-executes, and what the delta-debugging reducer shrinks:
building a case from its spec is deterministic, so a spec pins the whole
verdict bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..concrete.interpreter import derive_seed
from ..synth import FamilySpec, generate_program
from ..synth.blocks import ALL_BLOCK_TYPES

__all__ = ["CaseSpec", "BuiltCase", "build_case", "case_size",
           "weights_for_types", "SPEC_VERSION"]

SPEC_VERSION = 1

#: Names of all block types, in weight-vector order.
BLOCK_TYPE_NAMES = [t.__name__ for t in ALL_BLOCK_TYPES]


def weights_for_types(enabled: List[str]) -> List[float]:
    """A weight vector enabling exactly the named block types."""
    unknown = set(enabled) - set(BLOCK_TYPE_NAMES)
    if unknown:
        raise ValueError(f"unknown block types: {sorted(unknown)}")
    if not enabled:
        raise ValueError("at least one block type must stay enabled")
    return [1.0 if name in enabled else 0.0 for name in BLOCK_TYPE_NAMES]


@dataclass
class CaseSpec:
    """One replayable fuzz case."""

    case_id: str
    campaign_seed: int
    index: int
    # Family-spec parameters (repro.synth.FamilySpec).
    target_kloc: float = 0.15
    family_seed: int = 0
    version: int = 0
    modules_per_function: int = 8
    # Enabled block types (None = all, in ALL_BLOCK_TYPES order).
    block_types: Optional[List[str]] = None
    # Mutation descriptors applied, in order, to the generated program
    # (see repro.fuzz.mutators.apply_mutations).
    mutations: List[Dict] = field(default_factory=list)
    # Oracle budget: seeded concrete input streams per case.
    streams: int = 3
    max_ticks: int = 48
    # Analyzer overrides (e.g. per-case wall deadline for the supervisor).
    analyzer: Dict = field(default_factory=dict)
    # Fault-injection hook (validates the triage/reduce pipeline): crash
    # the worker iff the built program contains this block type.
    inject_crash: Optional[str] = None
    spec_version: int = SPEC_VERSION

    @property
    def case_seed(self) -> int:
        """The root seed of everything this case randomizes."""
        return derive_seed(self.campaign_seed, "case", self.index)

    def stream_seed(self, stream: int) -> int:
        return derive_seed(self.case_seed, "stream", stream)

    def to_json(self) -> Dict:
        out = {
            "spec_version": self.spec_version,
            "case_id": self.case_id,
            "campaign_seed": self.campaign_seed,
            "index": self.index,
            "target_kloc": self.target_kloc,
            "family_seed": self.family_seed,
            "version": self.version,
            "modules_per_function": self.modules_per_function,
            "block_types": self.block_types,
            "mutations": self.mutations,
            "streams": self.streams,
            "max_ticks": self.max_ticks,
            "analyzer": self.analyzer,
        }
        if self.inject_crash is not None:
            out["inject_crash"] = self.inject_crash
        return out

    @classmethod
    def from_json(cls, data: Dict) -> "CaseSpec":
        known = {
            "case_id", "campaign_seed", "index", "target_kloc",
            "family_seed", "version", "modules_per_function", "block_types",
            "mutations", "streams", "max_ticks", "analyzer", "inject_crash",
            "spec_version",
        }
        fields = {k: v for k, v in data.items() if k in known}
        missing = {"case_id", "campaign_seed", "index"} - set(fields)
        if missing:
            raise ValueError(f"case spec is missing fields: {sorted(missing)}")
        return cls(**fields)


@dataclass
class BuiltCase:
    """The concrete artifacts a spec expands to."""

    spec: CaseSpec
    source: str
    input_ranges: Dict[str, Tuple[float, float]]
    max_clock: int
    block_counts: Dict[str, int]
    applied_mutations: List[str]


def build_case(spec: CaseSpec) -> BuiltCase:
    """Deterministically expand a spec into analyzable artifacts."""
    from .mutators import apply_mutations

    weights = (None if spec.block_types is None
               else weights_for_types(spec.block_types))
    fam = FamilySpec(target_kloc=spec.target_kloc, seed=spec.family_seed,
                     weights=weights, version=spec.version,
                     modules_per_function=spec.modules_per_function)
    gp = generate_program(fam)
    source, ranges, applied = apply_mutations(
        gp.source, dict(gp.input_ranges), spec.mutations, spec.case_seed)
    return BuiltCase(spec=spec, source=source, input_ranges=ranges,
                     max_clock=gp.max_clock, block_counts=gp.block_counts,
                     applied_mutations=applied)


def case_size(spec: CaseSpec) -> int:
    """Strictly-decreasing size metric for the delta-debugging reducer.

    Cheap to compute (no program generation) and sensitive to every axis
    a reduction pass shrinks: program size, mutation count, block-type
    diversity, grouping, and the oracle budget.
    """
    n_types = (len(BLOCK_TYPE_NAMES) if spec.block_types is None
               else len(spec.block_types))
    return (int(spec.target_kloc * 1000) * 10
            + len(spec.mutations) * 500
            + n_types * 50
            + spec.modules_per_function * 5
            + spec.streams * 2
            + spec.max_ticks)
