"""The differential soundness oracle (γ-soundness, end to end).

Refactored out of the test suite (``tests/test_differential.py`` /
``tests/test_concrete.py``) into a reusable component shared by the
tests and the fuzzing campaign engine.  For one analyzed program it
drives :class:`repro.concrete.ConcreteInterpreter` over N seeded input
streams and demands the paper's two claims:

* **containment** — every scalar global value reached by an error-free
  concrete run lies inside the analyzer's main-loop invariant (or final
  state, for straight-line programs);
* **alarm coverage** — every run-time error kind observed concretely is
  covered by an alarm of the same kind.

Concrete runs that themselves err (overflow, division by zero, …) are
held to the coverage claim only: the analyzer *wipes* erroneous
executions after alarming (Sect. 5.3), so their post-error values are
deliberately outside the invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..concrete.interpreter import (
    ConcreteInterpreter, RandomInputs, derive_seed,
)
from ..memory.cells import AtomicLayout
from ..numeric import IntInterval

__all__ = [
    "ContainmentViolation", "OracleReport", "containment_violations",
    "final_interval", "main_loop_invariant", "run_oracle", "scalar_cells",
    "uncovered_error_kinds",
]


@dataclass
class ContainmentViolation:
    """One concrete value that escaped the abstract invariant."""

    stream: int
    tick: int
    name: str
    value: Union[int, float]
    interval: str

    def to_json(self) -> Dict:
        return {"stream": self.stream, "tick": self.tick, "name": self.name,
                "value": self.value, "interval": self.interval}


@dataclass
class OracleReport:
    """Verdict of the oracle over all input streams of one case."""

    streams: int
    max_ticks: int
    values_checked: int = 0
    runs_with_errors: int = 0
    concrete_error_kinds: Dict[str, int] = field(default_factory=dict)
    uncovered_error_kinds: List[str] = field(default_factory=list)
    violations: List[ContainmentViolation] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return not self.violations and not self.uncovered_error_kinds

    def to_json(self) -> Dict:
        return {
            "streams": self.streams,
            "max_ticks": self.max_ticks,
            "values_checked": self.values_checked,
            "runs_with_errors": self.runs_with_errors,
            "concrete_error_kinds": dict(sorted(
                self.concrete_error_kinds.items())),
            "uncovered_error_kinds": sorted(self.uncovered_error_kinds),
            "violations": [v.to_json() for v in self.violations],
            "sound": self.sound,
        }


def scalar_cells(result) -> Dict[str, object]:
    """Map each scalar global's name to its (atomic) cell."""
    out: Dict[str, object] = {}
    table = result.ctx.table
    for var in result.ctx.prog.globals:
        if not table.has_var(var.uid):
            continue
        layout = table.layout(var.uid)
        if isinstance(layout, AtomicLayout):
            out[var.name] = layout.cell
    return out


def main_loop_invariant(result):
    """The main-loop invariant: the collected loop invariant constraining
    the most cells (requires ``collect_invariants=True``), or ``None``."""
    if not result.loop_invariants:
        return None
    return max(result.loop_invariants.values(),
               key=lambda s: 0 if s.is_bottom else len(s.env.cells))


def final_interval(result, name) -> IntInterval:
    """The final abstract interval of a scalar global (straight-line
    differential checks)."""
    var = result.ctx.prog.global_by_name(name)
    cell = result.ctx.table.scalar_cell(var.uid)
    return result.final_state.env.get(cell.cid).itv


def _contains(itv, value) -> bool:
    if isinstance(itv, IntInterval):
        return itv.contains(int(value))
    return itv.contains(float(value))


def _state_violations(result, state, values, cells, stream: int,
                      tick: int) -> Tuple[int, List[ContainmentViolation]]:
    checked = 0
    out: List[ContainmentViolation] = []
    for name, value in values.items():
        cell = cells.get(name)
        if cell is None or cell.volatile:
            continue
        av = state.env.get(cell.cid)
        if av is None:
            continue
        checked += 1
        if not _contains(av.itv, value):
            out.append(ContainmentViolation(
                stream=stream, tick=tick, name=name, value=value,
                interval=repr(av.itv)))
    return checked, out


def containment_violations(result, interp: ConcreteInterpreter,
                           stream: int = 0,
                           cells: Optional[Dict] = None,
                           ) -> Tuple[int, List[ContainmentViolation]]:
    """Check one concrete run against the abstract results.

    Every loop-head snapshot is checked against the main-loop invariant;
    programs without collected loop invariants (straight-line code) are
    checked via their final memory snapshot against the final state.
    Returns ``(values_checked, violations)``.
    """
    cells = scalar_cells(result) if cells is None else cells
    inv = main_loop_invariant(result)
    checked = 0
    violations: List[ContainmentViolation] = []
    if inv is not None and not inv.is_bottom:
        for entry in interp.trace:
            n, v = _state_violations(result, inv, entry.values, cells,
                                     stream, entry.tick)
            checked += n
            violations.extend(v)
    if not interp.trace and not result.final_state.is_bottom:
        n, v = _state_violations(result, result.final_state,
                                 interp.snapshot(), cells, stream, -1)
        checked += n
        violations.extend(v)
    return checked, violations


def uncovered_error_kinds(result, errors) -> List[str]:
    """Concrete error kinds not covered by any alarm of the same kind."""
    alarm_kinds = {a.kind for a in result.alarms}
    return sorted({e.kind for e in errors} - alarm_kinds)


def run_oracle(prog, result, input_ranges, case_seed: int,
               streams: int = 3, max_ticks: int = 48) -> OracleReport:
    """Run the full oracle: N independent seeded input streams, each
    checked for containment (error-free runs) and alarm coverage (all
    runs).  Deterministic given ``case_seed``."""
    report = OracleReport(streams=streams, max_ticks=max_ticks)
    cells = scalar_cells(result)
    uncovered = set()
    for k in range(streams):
        inputs = RandomInputs(dict(input_ranges),
                              derive_seed(case_seed, "stream", k))
        interp = ConcreteInterpreter(prog, inputs, max_ticks=max_ticks)
        interp.run()
        for err in interp.errors:
            report.concrete_error_kinds[err.kind] = \
                report.concrete_error_kinds.get(err.kind, 0) + 1
        uncovered.update(uncovered_error_kinds(result, interp.errors))
        if interp.errors:
            # Post-error concrete values are wiped by the analyzer after
            # alarming; only the coverage claim applies to this run.
            report.runs_with_errors += 1
            continue
        checked, violations = containment_violations(result, interp, k, cells)
        report.values_checked += checked
        report.violations.extend(violations)
    report.uncovered_error_kinds = sorted(uncovered)
    return report
