"""Crash triage: collapse failures into stable signatures.

A campaign that finds one analyzer bug usually finds it fifty times.
Signatures bucket those fifty results into one work item: the exception
class, the topmost frame *inside the repro code base*, and the message
with volatile detail (digits, hex ids, quoted case ids) normalized away.
The same function signs in-process tracebacks (reducer, replay) and
worker stderr (subprocess isolation), so a reduction provably preserves
the failure it started from.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

__all__ = ["crash_signature", "normalize_message", "triage_failures"]

_FRAME_RE = re.compile(r'File "([^"]+)", line \d+, in (\S+)')
# The final "ExceptionClass: message" line of a traceback (tolerates
# dotted classes; skips the "Traceback ..." header and frame lines).
_ERROR_RE = re.compile(r"^(\w[\w.]*(?:Error|Exception|Halt|Interrupt|Exit))"
                       r"(?::\s*(.*))?$")


def normalize_message(message: str) -> str:
    """Strip volatile detail so equal bugs sign equally."""
    msg = re.sub(r"0x[0-9a-fA-F]+", "0x#", message)
    msg = re.sub(r"\d+", "#", msg)
    msg = re.sub(r"<[^<>]*>", "<#>", msg)
    return msg.strip()[:160]


def _repro_frame(text: str) -> Optional[str]:
    """The topmost (deepest) traceback frame inside the repro package."""
    frame = None
    for match in _FRAME_RE.finditer(text):
        path, func = match.groups()
        norm = path.replace("\\", "/")
        idx = norm.rfind("/repro/")
        if idx < 0:
            continue
        module = norm[idx + 1:].rsplit(".py", 1)[0].replace("/", ".")
        frame = f"{module}:{func}"
    return frame


def crash_signature(text: str) -> str:
    """Signature of a traceback (in-process) or worker stderr text."""
    exc_class, message = "UnknownError", ""
    for line in reversed(text.strip().splitlines()):
        match = _ERROR_RE.match(line.strip())
        if match:
            exc_class = match.group(1)
            message = match.group(2) or ""
            break
    frame = _repro_frame(text) or "?"
    return f"{exc_class}|{frame}|{normalize_message(message)}"


def triage_failures(results) -> Dict[str, List[str]]:
    """Group failing case results by signature -> sorted case ids.

    ``results`` is any iterable of objects with ``outcome``, ``signature``
    and ``spec.case_id`` attributes (:class:`repro.fuzz.CaseResult`).
    """
    buckets: Dict[str, List[str]] = {}
    for res in results:
        if res.outcome not in ("crash", "unsound", "timeout"):
            continue
        sig = res.signature or f"{res.outcome}|?|"
        buckets.setdefault(sig, []).append(res.spec.case_id)
    return {sig: sorted(ids) for sig, ids in sorted(buckets.items())}
