"""Spec-level delta-debugging reduction of failing fuzz cases.

The reducer shrinks the *case spec* — not the generated C text — so every
candidate stays a valid, replayable corpus entry.  A candidate is
accepted iff it (1) reproduces the same ``(outcome, signature)`` as the
original failure and (2) is strictly smaller under
:func:`repro.fuzz.case.case_size`; acceptance therefore terminates (the
size metric is a well-founded order) and the result provably preserves
the failure it minimizes.

Passes, applied to a fixpoint:

* halve ``target_kloc`` (program size — the dominant size term),
* drop mutations: halves first, then singletons (classic ddmin ladder),
* shrink the enabled block-type set the same way,
* collapse ``modules_per_function`` to 1,
* shrink the oracle budget (streams, ticks).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from .case import BLOCK_TYPE_NAMES, CaseSpec, case_size
from .runner import CaseOutcome, InProcessRunner

__all__ = ["ReductionResult", "reduce_case"]

#: The reduction target: what must be preserved by every accepted step.
Verdict = Tuple[str, Optional[str]]

_MIN_KLOC = 0.02
_MIN_TICKS = 8


@dataclass
class ReductionResult:
    original: CaseSpec
    reduced: CaseSpec
    target: Verdict
    attempts: int = 0
    accepted_passes: List[str] = field(default_factory=list)

    @property
    def original_size(self) -> int:
        return case_size(self.original)

    @property
    def reduced_size(self) -> int:
        return case_size(self.reduced)

    @property
    def shrank(self) -> bool:
        return self.reduced_size < self.original_size

    def to_json(self) -> dict:
        return {
            "case_id": self.original.case_id,
            "target_outcome": self.target[0],
            "target_signature": self.target[1],
            "attempts": self.attempts,
            "accepted_passes": list(self.accepted_passes),
            "original_size": self.original_size,
            "reduced_size": self.reduced_size,
            "reduced_spec": self.reduced.to_json(),
        }


def _verdict(outcome: CaseOutcome) -> Verdict:
    return outcome.outcome, outcome.signature


def _sublists(items: List) -> List[List]:
    """Candidate survivor sets, largest deletions first: each half, then
    each single-element deletion (ddmin's granularity ladder, flattened —
    specs are tiny, so quadratic attempts are fine)."""
    out: List[List] = []
    n = len(items)
    if n >= 2:
        out.append(items[n // 2:])
        out.append(items[:n // 2])
    for i in range(n):
        survivor = items[:i] + items[i + 1:]
        if survivor and survivor not in out:
            out.append(survivor)
    return out


def _candidates(spec: CaseSpec) -> List[Tuple[str, CaseSpec]]:
    """One round of reduction candidates, biggest shrink first."""
    out: List[Tuple[str, CaseSpec]] = []
    if spec.target_kloc / 2 >= _MIN_KLOC:
        out.append(("halve-kloc",
                    replace(spec, target_kloc=spec.target_kloc / 2)))
    for survivors in _sublists(spec.mutations):
        out.append((f"drop-mutations-to-{len(survivors)}",
                    replace(spec, mutations=survivors)))
    if spec.mutations:
        out.append(("drop-all-mutations", replace(spec, mutations=[])))
    types = (list(BLOCK_TYPE_NAMES) if spec.block_types is None
             else list(spec.block_types))
    for survivors in _sublists(types):
        out.append((f"restrict-blocks-to-{len(survivors)}",
                    replace(spec, block_types=survivors)))
    if spec.modules_per_function > 1:
        out.append(("modules-per-function-1",
                    replace(spec, modules_per_function=1)))
    if spec.streams > 1:
        out.append(("one-stream", replace(spec, streams=1)))
    if spec.max_ticks // 2 >= _MIN_TICKS:
        out.append(("halve-ticks",
                    replace(spec, max_ticks=spec.max_ticks // 2)))
    return out


def reduce_case(spec: CaseSpec,
                run: Optional[Callable[[CaseSpec], CaseOutcome]] = None,
                max_attempts: int = 250) -> ReductionResult:
    """Minimize a failing spec while preserving its (outcome, signature).

    ``run`` executes a candidate and returns its :class:`CaseOutcome`;
    the default is the in-process runner (deterministic, and fast enough
    to afford the quadratic ddmin ladder).  The first execution
    establishes the target verdict from ``spec`` itself.
    """
    runner = InProcessRunner()
    run = run or runner.run_spec
    target = _verdict(run(spec))
    result = ReductionResult(original=spec, reduced=spec, target=target,
                             attempts=1)
    current = spec
    improved = True
    while improved and result.attempts < max_attempts:
        improved = False
        for name, candidate in _candidates(current):
            if case_size(candidate) >= case_size(current):
                continue
            if result.attempts >= max_attempts:
                break
            result.attempts += 1
            if _verdict(run(candidate)) == target:
                current = candidate
                result.accepted_passes.append(name)
                improved = True
                break  # restart pass ladder from the smaller spec
    result.reduced = current
    return result
