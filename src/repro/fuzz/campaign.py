"""Campaign orchestration: generate, execute, triage, reduce, persist.

A campaign is fully determined by its configuration — above all the
``campaign_seed``, from which every case spec, every mutation draw and
every oracle input stream is derived (:func:`repro.concrete.derive_seed`).
The per-case *verdict digest* hashes only deterministic fields, so
replaying a persisted corpus case yields a bit-identical digest; wall
times and retry counts live outside the digest.

Failing cases (crash / unsound / timeout) are persisted as JSON specs in
the corpus directory, one signature bucket gets one delta-debugging
reduction, and everything is folded into a machine-readable
:class:`CampaignReport` for CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from ..concrete.interpreter import derive_seed
from ..errors import ReproError
from ..supervisor.budget import ResourceBudget
from .case import BLOCK_TYPE_NAMES, CaseSpec, case_size
from .mutators import MUTATION_KINDS
from .reduce import ReductionResult, reduce_case
from .runner import CaseOutcome, InProcessRunner, SubprocessRunner
from .triage import triage_failures

__all__ = [
    "CampaignConfig", "CampaignReport", "CaseResult", "generate_case_specs",
    "load_case", "replay_case", "run_campaign", "save_case",
    "verdict_digest",
]

#: Outcomes that mean the soundness claim (or the analyzer) broke.
FAILURE_OUTCOMES = ("crash", "unsound")


@dataclass
class CampaignConfig:
    """Everything a campaign run depends on."""

    campaign_seed: int = 0
    cases: int = 50
    # Budgets: campaign wall clock and per-case subprocess timeout.
    max_wall_s: Optional[float] = None
    case_timeout_s: Optional[float] = 120.0
    # Isolation: subprocess-per-case (default) or in-process.
    isolation: bool = True
    infra_retries: int = 2
    backoff_s: float = 0.5
    # Corpus persistence (failing specs + reductions); None disables.
    corpus_dir: Optional[str] = None
    # Reduction of one representative case per failure signature.
    reduce_failures: bool = True
    max_reduce_attempts: int = 60
    # Generation knobs.
    min_kloc: float = 0.06
    max_kloc: float = 0.2
    max_mutations: int = 3
    streams: int = 3
    max_ticks: int = 48
    # Fault-injection hook, stamped onto every generated spec (see
    # CaseSpec.inject_crash); validates the triage/reduce pipeline.
    inject_crash: Optional[str] = None
    # Vectorized-kernel differential mode: every other case runs on the
    # scalar-oracle backend (analyzer override {"vectorize": False}) and
    # the worker re-analyzes it vectorized, failing the case on any
    # verdict drift.  Off by default; enabling it does not perturb the
    # spec stream (no extra rng draws).
    exercise_no_vectorize: bool = False

    def to_json(self) -> Dict:
        return {
            "campaign_seed": self.campaign_seed,
            "cases": self.cases,
            "max_wall_s": self.max_wall_s,
            "case_timeout_s": self.case_timeout_s,
            "isolation": self.isolation,
            "min_kloc": self.min_kloc,
            "max_kloc": self.max_kloc,
            "max_mutations": self.max_mutations,
            "streams": self.streams,
            "max_ticks": self.max_ticks,
            "inject_crash": self.inject_crash,
            "exercise_no_vectorize": self.exercise_no_vectorize,
        }


@dataclass
class CaseResult:
    """One case's classified outcome plus its replay digest."""

    spec: CaseSpec
    outcome: str
    signature: Optional[str] = None
    digest: str = ""
    payload: Optional[Dict] = None
    stderr_tail: str = ""
    attempts: int = 1
    infra_retries: int = 0
    wall_time_s: float = 0.0

    def to_json(self, full: bool = False) -> Dict:
        out = {
            "case_id": self.spec.case_id,
            "outcome": self.outcome,
            "signature": self.signature,
            "digest": self.digest,
            "attempts": self.attempts,
            "infra_retries": self.infra_retries,
            "wall_time_s": round(self.wall_time_s, 3),
            "case_size": case_size(self.spec),
        }
        # Keep the slim report payload-free, but the vectorize
        # differential verdict is one bool and CI gates want to see
        # that the mode actually exercised cases.
        if self.payload and "vectorize_differential" in self.payload:
            out["vectorize_differential"] = \
                self.payload["vectorize_differential"]
        if full:
            out["spec"] = self.spec.to_json()
            out["payload"] = self.payload
            out["stderr_tail"] = self.stderr_tail
        return out


def verdict_digest(spec: CaseSpec, outcome: str,
                   signature: Optional[str],
                   payload: Optional[Dict]) -> str:
    """SHA-256 over the deterministic verdict of one case.

    Covers the spec and the classified outcome (payload included for
    verdicts, triage signature for failures); excludes wall time, RSS,
    retry counts and stderr text, so replays are bit-identical.
    """
    blob = json.dumps({
        "spec": spec.to_json(),
        "outcome": outcome,
        "signature": signature,
        "payload": payload,
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CampaignReport:
    """The machine-readable result of a whole campaign (CI consumes the
    JSON form; ``repro.report`` renders the human-readable summary)."""

    config: CampaignConfig
    results: List[CaseResult]
    reductions: List[ReductionResult] = field(default_factory=list)
    wall_time_s: float = 0.0
    stopped_reason: Optional[str] = None
    cases_planned: int = 0

    @property
    def outcome_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for res in self.results:
            out[res.outcome] = out.get(res.outcome, 0) + 1
        return dict(sorted(out.items()))

    @property
    def triage(self) -> Dict[str, List[str]]:
        return triage_failures(self.results)

    @property
    def ok(self) -> bool:
        """No soundness violation and no analyzer crash (the CI gate;
        timeouts and degradations are reported but not failures)."""
        counts = self.outcome_counts
        return all(counts.get(k, 0) == 0 for k in FAILURE_OUTCOMES)

    def to_json(self) -> Dict:
        failing = [r for r in self.results if r.outcome in
                   ("crash", "unsound", "timeout")]
        return {
            "config": self.config.to_json(),
            "cases_planned": self.cases_planned,
            "cases_run": len(self.results),
            "outcome_counts": self.outcome_counts,
            "ok": self.ok,
            "stopped_reason": self.stopped_reason,
            "wall_time_s": round(self.wall_time_s, 3),
            "triage": self.triage,
            "results": [r.to_json() for r in self.results],
            "failures": [r.to_json(full=True) for r in failing],
            "reductions": [r.to_json() for r in self.reductions],
        }


def _spec_rng(campaign_seed: int, index: int) -> random.Random:
    return random.Random(derive_seed(campaign_seed, "genspec", index))


def _random_mutations(rng: random.Random, max_mutations: int) -> List[Dict]:
    kinds = sorted(MUTATION_KINDS)
    out: List[Dict] = []
    for _ in range(rng.randint(0, max_mutations)):
        kind = rng.choice(kinds)
        desc: Dict = {"kind": kind}
        if kind == "boundary-constants":
            desc["count"] = rng.randint(1, 3)
        elif kind == "adversarial-ranges":
            desc["count"] = rng.randint(1, 2)
        elif kind == "deep-nesting":
            desc["depth"] = rng.choice([2, 4, 8, 16, 32])
        elif kind == "degenerate-filter":
            desc["variant"] = rng.randrange(6)
        out.append(desc)
    return out


def generate_case_specs(config: CampaignConfig) -> List[CaseSpec]:
    """The campaign's case list — a pure function of the config."""
    specs: List[CaseSpec] = []
    for index in range(config.cases):
        rng = _spec_rng(config.campaign_seed, index)
        kloc = round(rng.uniform(config.min_kloc, config.max_kloc), 3)
        block_types = None
        if rng.random() < 0.3:
            k = rng.randint(3, len(BLOCK_TYPE_NAMES))
            block_types = sorted(rng.sample(BLOCK_TYPE_NAMES, k))
        specs.append(CaseSpec(
            case_id=f"c{config.campaign_seed:016x}-{index:04d}",
            campaign_seed=config.campaign_seed,
            index=index,
            target_kloc=kloc,
            family_seed=derive_seed(config.campaign_seed, "family", index),
            version=rng.randrange(3),
            modules_per_function=rng.choice([1, 2, 4, 8]),
            block_types=block_types,
            mutations=_random_mutations(rng, config.max_mutations),
            streams=config.streams,
            max_ticks=config.max_ticks,
            inject_crash=config.inject_crash,
            analyzer={"vectorize": False}
            if config.exercise_no_vectorize and index % 2 == 1 else {},
        ))
    return specs


def save_case(spec: CaseSpec, path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(spec.to_json(), f, indent=2, sort_keys=True)
        f.write("\n")


def load_case(path: str) -> CaseSpec:
    """Load a corpus case; unreadable or corrupt files are diagnosed
    (with the path) as :class:`ReproError` — CLI exit code 3."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except OSError as exc:
        raise ReproError(f"cannot read case file {path}: "
                         f"{exc.strerror or exc}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ReproError(f"corrupt case file {path}: {exc}") from exc
    try:
        return CaseSpec.from_json(data)
    except (TypeError, ValueError) as exc:
        raise ReproError(f"corrupt case file {path}: {exc}") from exc


def _make_runner(config: CampaignConfig):
    if config.isolation:
        return SubprocessRunner(timeout_s=config.case_timeout_s,
                                infra_retries=config.infra_retries,
                                backoff_s=config.backoff_s)
    return InProcessRunner()


def _classify(spec: CaseSpec, outcome: CaseOutcome) -> CaseResult:
    signature = outcome.signature
    if outcome.outcome == "unsound" and signature is None:
        oracle = (outcome.payload or {}).get("oracle", {})
        uncovered = ",".join(oracle.get("uncovered_error_kinds", []))
        escaped = ",".join(sorted({v["name"] for v in
                                   oracle.get("violations", [])}))
        signature = f"unsound|uncovered:{uncovered}|escaped:{escaped}"
    return CaseResult(
        spec=spec, outcome=outcome.outcome, signature=signature,
        digest=verdict_digest(spec, outcome.outcome, signature,
                              outcome.payload),
        payload=outcome.payload, stderr_tail=outcome.stderr_tail,
        attempts=outcome.attempts, infra_retries=outcome.infra_retries,
        wall_time_s=outcome.wall_time_s)


def replay_case(spec_or_path: Union[CaseSpec, str],
                isolation: bool = True,
                case_timeout_s: Optional[float] = 120.0) -> CaseResult:
    """Re-execute one corpus case; the digest of an identical spec under
    an identical code base is bit-identical to the campaign's."""
    spec = (load_case(spec_or_path) if isinstance(spec_or_path, str)
            else spec_or_path)
    runner = (SubprocessRunner(timeout_s=case_timeout_s) if isolation
              else InProcessRunner())
    return _classify(spec, runner.run_spec(spec))


def _persist_corpus(report: CampaignReport) -> None:
    corpus_dir = report.config.corpus_dir
    if corpus_dir is None:
        return
    os.makedirs(corpus_dir, exist_ok=True)
    for res in report.results:
        if res.outcome in ("crash", "unsound", "timeout"):
            save_case(res.spec,
                      os.path.join(corpus_dir, f"{res.spec.case_id}.json"))
    for red in report.reductions:
        save_case(red.reduced, os.path.join(
            corpus_dir, f"{red.original.case_id}.reduced.json"))


def run_campaign(config: CampaignConfig,
                 progress: Optional[Callable[[CaseResult], None]] = None,
                 ) -> CampaignReport:
    """Run a whole campaign under the configured budgets."""
    specs = generate_case_specs(config)
    runner = _make_runner(config)
    budget = ResourceBudget(wall_deadline_s=config.max_wall_s)
    started = time.perf_counter()
    report = CampaignReport(config=config, results=[],
                            cases_planned=len(specs))
    for spec in specs:
        if budget.check(started) is not None:
            report.stopped_reason = "wall-budget"
            break
        result = _classify(spec, runner.run_spec(spec))
        report.results.append(result)
        if progress is not None:
            progress(result)
    if config.reduce_failures:
        reduced_signatures = set()
        for res in report.results:
            if res.outcome not in FAILURE_OUTCOMES:
                continue
            if res.signature in reduced_signatures:
                continue
            reduced_signatures.add(res.signature)
            report.reductions.append(reduce_case(
                res.spec, max_attempts=config.max_reduce_attempts))
    _persist_corpus(report)
    report.wall_time_s = time.perf_counter() - started
    return report
