"""Soundness fuzzing campaign engine (randomized differential testing).

The paper's central claim is soundness: every behaviour of the analyzed
program is covered by the analyzer's invariants and alarms.  This package
continuously manufactures adversarial evidence for that claim.  It

* mutates :mod:`repro.synth` block-diagram specs and the generated
  programs into edge-case variants (:mod:`.mutators`),
* runs every case in an isolated subprocess with a per-case timeout and
  retry/backoff on infrastructure failures (:mod:`.runner`),
* checks each case against the differential soundness oracle — concrete
  executions must stay inside the abstract invariants and every concrete
  run-time error must be covered by an alarm (:mod:`.oracle`),
* triages failures by crash signature (:mod:`.triage`), minimizes them
  with a spec-level delta-debugging reducer (:mod:`.reduce`), and
* persists a replayable corpus plus a JSON campaign report
  (:mod:`.campaign`); ``astree-repro fuzz --replay case.json``
  reproduces bit-identical verdicts.
"""

from .case import BuiltCase, CaseSpec, build_case, case_size
from .campaign import (
    CampaignConfig, CampaignReport, CaseResult, generate_case_specs,
    load_case, replay_case, run_campaign, save_case, verdict_digest,
)
from .oracle import OracleReport, run_oracle
from .reduce import ReductionResult, reduce_case
from .runner import CaseOutcome, InProcessRunner, SubprocessRunner
from .triage import crash_signature, triage_failures

__all__ = [
    "BuiltCase", "CampaignConfig", "CampaignReport", "CaseOutcome",
    "CaseResult", "CaseSpec", "InProcessRunner", "OracleReport",
    "ReductionResult", "SubprocessRunner", "build_case", "case_size",
    "crash_signature", "generate_case_specs", "load_case", "reduce_case",
    "replay_case", "run_campaign", "run_oracle", "save_case",
    "triage_failures", "verdict_digest",
]
