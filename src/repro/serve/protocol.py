"""Wire protocol of the analysis daemon: newline-delimited JSON over a
Unix-domain socket.

Every request and response is one JSON object on one line, UTF-8.
Requests carry an ``op``; responses always carry ``ok`` (bool) plus
op-specific fields, or ``ok: false`` with ``error``.  One connection may
issue any number of requests; the daemon answers them in order.

Ops:

``ping``
    Liveness probe.  -> ``{ok, pid, uptime_s}``
``submit``
    Enqueue an analysis job.  Fields: ``sources`` (list of
    ``[filename, text]`` pairs), ``entry`` (default ``main``),
    ``config`` (dict of AnalyzerConfig field overrides, optional),
    ``wait`` (bool, default true: block until the job finishes and
    return its result envelope; otherwise return ``{job_id}``
    immediately), ``bypass_cache`` (bool: force a cold run, used by
    benchmarks to produce reference results).
``status``
    ``{job_id}`` -> ``{state, queue_depth}`` where state is one of
    queued/running/done/failed.
``result``
    ``{job_id}`` -> the job's result envelope (blocks until done).
``stats``
    -> counters of every cache layer, queue depth, request/hit totals.
``shutdown``
    Stop accepting work, finish the running job, exit.

Result envelope (also what the exact-result store persists)::

    {ok: true, job_id, cached: bool, digest: <sha256 of the semantic
     result fields>, wall_s: <serving time>, result: <result_payload>}

The digest covers alarms/exit code/invariants only (see
repro.serve.fingerprints.result_digest) — the determinism contract is
that ``digest`` of a cache-served response equals the digest of the
cold run that populated the entry.

The daemon-to-worker channel (repro.serve.worker) uses a different
framing on the same JSON payloads: **length-prefixed frames** (4-byte
big-endian length + UTF-8 JSON body) over the worker subprocess's
stdin/stdout pipes.  Length prefixes make truncation *detectable*: a
worker killed mid-write leaves a frame whose declared length exceeds
the bytes that follow, which ``recv_frame`` reports as a
:class:`ProtocolError` instead of blocking forever or mis-parsing the
next frame — the supervisor treats that exactly like a worker death.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Optional

from ..ipc.frames import MAX_FRAME, ProtocolError, recv_frame, send_frame

__all__ = ["MAX_LINE", "ProtocolError", "recv_frame", "recv_message",
           "send_frame", "send_message"]

# One message may carry whole translation units; bound it generously
# (64 MiB) so a runaway client cannot exhaust daemon memory.
MAX_LINE = MAX_FRAME


def send_message(sock: socket.socket, message: Dict) -> None:
    data = json.dumps(message, separators=(",", ":")).encode() + b"\n"
    sock.sendall(data)


def recv_message(reader) -> Optional[Dict]:
    """Read one message from a buffered binary reader (``sock.makefile``).
    Returns None on clean EOF, raises ProtocolError on garbage."""
    line = reader.readline(MAX_LINE + 1)
    if not line:
        return None
    if len(line) > MAX_LINE:
        raise ProtocolError("message exceeds size limit")
    if not line.endswith(b"\n"):
        raise ProtocolError("truncated message (connection dropped mid-line)")
    try:
        msg = json.loads(line)
    except ValueError as e:
        raise ProtocolError(f"bad JSON: {e}")
    if not isinstance(msg, dict):
        raise ProtocolError("message is not a JSON object")
    return msg


def error_response(message: str, **extra) -> Dict:
    out = {"ok": False, "error": message}
    out.update(extra)
    return out


# -- length-prefixed frames (daemon <-> worker subprocess pipes) --------------
#
# ``send_frame``/``recv_frame`` are re-exported from the shared framing
# module (repro.ipc.frames), which the socket dispatch backend of the
# parallel engine uses on the same wire format.
