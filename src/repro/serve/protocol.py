"""Wire protocol of the analysis daemon: newline-delimited JSON over a
Unix-domain socket.

Every request and response is one JSON object on one line, UTF-8.
Requests carry an ``op``; responses always carry ``ok`` (bool) plus
op-specific fields, or ``ok: false`` with ``error``.  One connection may
issue any number of requests; the daemon answers them in order.

Ops:

``ping``
    Liveness probe.  -> ``{ok, pid, uptime_s}``
``submit``
    Enqueue an analysis job.  Fields: ``sources`` (list of
    ``[filename, text]`` pairs), ``entry`` (default ``main``),
    ``config`` (dict of AnalyzerConfig field overrides, optional),
    ``wait`` (bool, default true: block until the job finishes and
    return its result envelope; otherwise return ``{job_id}``
    immediately), ``bypass_cache`` (bool: force a cold run, used by
    benchmarks to produce reference results).
``status``
    ``{job_id}`` -> ``{state, queue_depth}`` where state is one of
    queued/running/done/failed.
``result``
    ``{job_id}`` -> the job's result envelope (blocks until done).
``stats``
    -> counters of every cache layer, queue depth, request/hit totals.
``shutdown``
    Stop accepting work, finish the running job, exit.

Result envelope (also what the exact-result store persists)::

    {ok: true, job_id, cached: bool, digest: <sha256 of the semantic
     result fields>, wall_s: <serving time>, result: <result_payload>}

The digest covers alarms/exit code/invariants only (see
repro.serve.fingerprints.result_digest) — the determinism contract is
that ``digest`` of a cache-served response equals the digest of the
cold run that populated the entry.

The daemon-to-worker channel (repro.serve.worker) uses a different
framing on the same JSON payloads: **length-prefixed frames** (4-byte
big-endian length + UTF-8 JSON body) over the worker subprocess's
stdin/stdout pipes.  Length prefixes make truncation *detectable*: a
worker killed mid-write leaves a frame whose declared length exceeds
the bytes that follow, which ``recv_frame`` reports as a
:class:`ProtocolError` instead of blocking forever or mis-parsing the
next frame — the supervisor treats that exactly like a worker death.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional

__all__ = ["MAX_LINE", "ProtocolError", "recv_frame", "recv_message",
           "send_frame", "send_message"]

# One message may carry whole translation units; bound it generously
# (64 MiB) so a runaway client cannot exhaust daemon memory.
MAX_LINE = 64 * 1024 * 1024


class ProtocolError(Exception):
    """Malformed frame: oversized line, truncated stream, bad JSON."""


def send_message(sock: socket.socket, message: Dict) -> None:
    data = json.dumps(message, separators=(",", ":")).encode() + b"\n"
    sock.sendall(data)


def recv_message(reader) -> Optional[Dict]:
    """Read one message from a buffered binary reader (``sock.makefile``).
    Returns None on clean EOF, raises ProtocolError on garbage."""
    line = reader.readline(MAX_LINE + 1)
    if not line:
        return None
    if len(line) > MAX_LINE:
        raise ProtocolError("message exceeds size limit")
    if not line.endswith(b"\n"):
        raise ProtocolError("truncated message (connection dropped mid-line)")
    try:
        msg = json.loads(line)
    except ValueError as e:
        raise ProtocolError(f"bad JSON: {e}")
    if not isinstance(msg, dict):
        raise ProtocolError("message is not a JSON object")
    return msg


def error_response(message: str, **extra) -> Dict:
    out = {"ok": False, "error": message}
    out.update(extra)
    return out


# -- length-prefixed frames (daemon <-> worker subprocess pipes) --------------

_FRAME_HEADER = struct.Struct(">I")


def send_frame(stream, message: Dict) -> None:
    """Write one length-prefixed JSON frame to a binary stream and
    flush it (the worker pipes are fully buffered)."""
    data = json.dumps(message, separators=(",", ":")).encode()
    if len(data) > MAX_LINE:
        raise ProtocolError("frame exceeds size limit")
    stream.write(_FRAME_HEADER.pack(len(data)) + data)
    stream.flush()


def _read_exact(stream, n: int) -> bytes:
    """Read exactly n bytes from a buffered binary stream, tolerating
    short reads (pipes return what is available, not what was asked)."""
    chunks = []
    got = 0
    while got < n:
        chunk = stream.read(n - got)
        if not chunk:
            break
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(stream) -> Optional[Dict]:
    """Read one length-prefixed frame.  Returns None on clean EOF (no
    header bytes at all); raises ProtocolError on a half-written frame
    — the tell of a peer that died mid-write."""
    header = _read_exact(stream, _FRAME_HEADER.size)
    if not header:
        return None
    if len(header) < _FRAME_HEADER.size:
        raise ProtocolError("truncated frame header (peer died mid-write)")
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_LINE:
        raise ProtocolError("frame exceeds size limit")
    body = _read_exact(stream, length)
    if len(body) < length:
        raise ProtocolError(
            f"truncated frame body ({len(body)} of {length} bytes)")
    try:
        msg = json.loads(body)
    except ValueError as e:
        raise ProtocolError(f"bad JSON in frame: {e}")
    if not isinstance(msg, dict):
        raise ProtocolError("frame is not a JSON object")
    return msg
