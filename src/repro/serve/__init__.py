"""Analysis-as-a-service: a long-lived daemon with cross-run caching.

The paper's analyzer was run daily on successive versions of one
evolving program family; turnaround time on near-duplicate inputs — not
single-run throughput — is the practical bottleneck.  This package
keeps the expensive state warm across requests:

* :mod:`.server` / :mod:`.client` — the ``astree-repro serve`` daemon
  (newline-delimited JSON over a Unix socket: submit/status/result/
  stats/shutdown) and its submit-and-wait client;
* :mod:`.jobs` — the bounded in-process job queue with per-job
  supervisor budgets;
* :mod:`.cache` — the cross-run fixpoint cache: per-statement
  (pre, post) journals keyed by content fingerprints, spliced into the
  incremental engine of a later run so only edited slices re-execute;
* :mod:`.store` — the on-disk result and journal stores (atomic
  writes; cache warmth survives daemon restarts);
* :mod:`.fingerprints` — the content-addressed keys everything above
  is indexed by;
* :mod:`.workload` — the near-duplicate edit workload used by the
  benchmark driver, tests and CI.

Determinism contract: a cache-served result is bit-identical (alarms,
invariant statistics, exit code) to a cold run of the same
source+configuration.  See docs/architecture.md, "Serving and
cross-run caching".
"""

from .cache import CrossRunCache, FrontendCache
from .client import ServeClient
from .fingerprints import (compat_fingerprint, config_fingerprint,
                           result_digest, result_payload, source_digest)
from .jobs import Job, JobQueue
from .server import AnalysisServer, ServeConfig
from .store import JournalStore, ResultStore

__all__ = [
    "AnalysisServer", "CrossRunCache", "FrontendCache", "Job", "JobQueue",
    "JournalStore", "ResultStore", "ServeClient", "ServeConfig",
    "compat_fingerprint", "config_fingerprint", "result_digest",
    "result_payload", "source_digest",
]
