"""The daemon's in-process job queue and the job/config wire helpers.

One FIFO queue, one dispatcher: analysis runs are CPU-bound and share
per-worker warm state (intern pools, closure memo, the active analysis
context used by journal unpickling), so running them sequentially
through a single supervised worker is both the fast and the correct
arrangement — warm state stays coherent, and a submit never makes an
earlier job slower.  Backpressure is a bounded queue: submits beyond
``max_queue`` pending jobs are refused with a retryable error response
(plus a ``retry_after_s`` hint) rather than buffered without limit.

Each job carries its own effective configuration, including the per-job
supervisor budgets the server imposes (wall deadline, RSS cap) so a
pathological request degrades or dies under the supervisor instead of
wedging the daemon.  The config decoding lives here because both sides
of the worker pipe need it: the parent computes the request key for the
exact-result cache and the poison quarantine, the worker builds the
same :class:`~repro.config.AnalyzerConfig` to run the analysis.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Dict, List, Optional, Tuple

__all__ = ["CLIENT_FIELDS", "Job", "JobQueue", "QueueFull",
           "decode_overrides", "effective_config"]


# Configuration fields a request may override.  Everything else is the
# daemon operator's call; rejecting unknown keys early gives clients a
# real error instead of a silently ignored knob.
CLIENT_FIELDS = frozenset({
    "input_ranges", "max_clock", "default_unroll", "partition_functions",
    "enable_octagons", "enable_ellipsoids", "enable_decision_trees",
    "enable_clock", "collect_invariants", "trace", "incremental", "jobs",
    "wall_deadline_s", "rss_limit_kib", "stmt_timeout_s",
})


def decode_overrides(raw: Dict) -> Dict:
    """JSON-decoded config overrides -> AnalyzerConfig field values
    (tuples and sets do not survive JSON; rebuild them)."""
    out: Dict = {}
    for key, value in raw.items():
        if key not in CLIENT_FIELDS:
            raise ValueError(f"config field not settable over serve: {key}")
        if key == "input_ranges":
            value = {name: (float(lo), float(hi))
                     for name, (lo, hi) in dict(value).items()}
        elif key == "partition_functions":
            value = set(value)
        out[key] = value
    return out


def effective_config(base_config, raw_overrides: Dict,
                     default_deadline_s: Optional[float] = None,
                     default_rss_kib: Optional[int] = None):
    """The AnalyzerConfig one job runs under: daemon base config, then
    the request's overrides, with the daemon's per-job budget defaults
    filling any budget the request left unset.  Identical on both sides
    of the worker pipe, so the parent's request key and the worker's
    analysis agree on the configuration fingerprint."""
    overrides = decode_overrides(raw_overrides)
    if "wall_deadline_s" not in overrides and default_deadline_s:
        overrides["wall_deadline_s"] = default_deadline_s
    if "rss_limit_kib" not in overrides and default_rss_kib:
        overrides["rss_limit_kib"] = default_rss_kib
    return base_config.with_overrides(**overrides)


class QueueFull(Exception):
    """Raised by submit when the pending queue is at capacity (or the
    daemon is draining)."""


class Job:
    """One analysis request moving through queued -> running -> done or
    failed.  ``envelope`` is the protocol result envelope once done —
    for failures too: a failed job's envelope is the structured error
    response (``ok: false`` plus ``error``/``poisoned``/``retryable``
    fields), so clients get machine-readable failure detail, not just a
    message string."""

    __slots__ = ("job_id", "sources", "entry", "config_overrides",
                 "bypass_cache", "state", "envelope", "error", "done",
                 "enqueued_depth")

    def __init__(self, job_id: str, sources: List[Tuple[str, str]],
                 entry: str, config_overrides: Dict,
                 bypass_cache: bool = False):
        self.job_id = job_id
        self.sources = sources
        self.entry = entry
        self.config_overrides = config_overrides
        self.bypass_cache = bypass_cache
        self.state = "queued"
        self.envelope: Optional[Dict] = None
        self.error: Optional[str] = None
        self.done = threading.Event()
        # Queue depth observed at submit time (surfaced per request).
        self.enqueued_depth = 0

    def to_wire(self) -> Dict:
        """The ``run`` frame sent to the worker subprocess."""
        return {
            "op": "run", "job_id": self.job_id,
            "sources": [list(p) for p in self.sources],
            "entry": self.entry, "config_overrides": self.config_overrides,
            "bypass_cache": self.bypass_cache,
        }

    def finish(self, envelope: Dict) -> None:
        self.envelope = envelope
        self.state = "done"
        self.done.set()

    def fail(self, message: str, **extra) -> None:
        self.error = message
        self.envelope = dict({"ok": False, "error": message,
                              "job_id": self.job_id}, **extra)
        self.state = "failed"
        self.done.set()

    def fail_envelope(self, envelope: Dict) -> None:
        self.error = str(envelope.get("error", "job failed"))
        self.envelope = envelope
        self.state = "failed"
        self.done.set()


class JobQueue:
    """Bounded FIFO of Jobs with a registry for status/result lookups."""

    def __init__(self, max_queue: int = 64, max_finished: int = 256):
        self.max_queue = max_queue
        self.max_finished = max_finished
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._pending: "deque[Job]" = deque()
        self._jobs: Dict[str, Job] = {}
        self._finished_order: "deque[str]" = deque()
        self._ids = itertools.count(1)
        self._closed = False
        self.running: Optional[Job] = None
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.cancelled = 0

    def new_job_id(self) -> str:
        return f"job-{next(self._ids)}"

    def submit(self, job: Job) -> None:
        with self._lock:
            if self._closed:
                self.rejected += 1
                raise QueueFull("daemon is shutting down")
            if len(self._pending) >= self.max_queue:
                self.rejected += 1
                raise QueueFull(
                    f"queue full ({self.max_queue} jobs pending)")
            job.enqueued_depth = len(self._pending)
            self._pending.append(job)
            self._jobs[job.job_id] = job
            self.submitted += 1
            self._available.notify()

    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Blocks until a job is available or the queue is closed."""
        with self._lock:
            while not self._pending and not self._closed:
                if not self._available.wait(timeout):
                    return None
            if not self._pending:
                return None
            job = self._pending.popleft()
            job.state = "running"
            self.running = job
            return job

    def job_done(self, job: Job) -> None:
        with self._lock:
            if self.running is job:
                self.running = None
            if job.state == "failed":
                self.failed += 1
            else:
                self.completed += 1
            self._finished_order.append(job.job_id)
            while len(self._finished_order) > self.max_finished:
                old = self._finished_order.popleft()
                self._jobs.pop(old, None)

    def cancel_pending(self, reason: str) -> int:
        """Fail every still-queued job with a retryable cancellation
        envelope (drain-deadline escalation).  Returns the count."""
        with self._lock:
            cancelled = list(self._pending)
            self._pending.clear()
        for job in cancelled:
            job.fail(reason, retryable=True, cancelled=True)
            with self._lock:
                self.failed += 1
                self.cancelled += 1
                self._finished_order.append(job.job_id)
        return len(cancelled)

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def busy(self) -> bool:
        """True while a job is pending or in flight."""
        with self._lock:
            return bool(self._pending) or self.running is not None

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._available.notify_all()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "depth": len(self._pending),
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "cancelled": self.cancelled,
            }
