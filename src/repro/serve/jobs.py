"""The daemon's in-process job queue.

One FIFO queue, one worker: analysis runs are CPU-bound and share
process-global warm state (intern pools, closure memo, the active
analysis context used by journal unpickling), so running them
sequentially in a single worker thread is both the fast and the correct
arrangement — warm state stays coherent, and a submit never makes an
earlier job slower.  Backpressure is a bounded queue: submits beyond
``max_queue`` pending jobs are refused with an error response rather
than buffered without limit.

Each job carries its own effective configuration, including the per-job
supervisor budgets the server imposes (wall deadline, RSS cap) so a
pathological request degrades or dies under the supervisor instead of
wedging the daemon.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Dict, List, Optional, Tuple

__all__ = ["Job", "JobQueue", "QueueFull"]


class QueueFull(Exception):
    """Raised by submit when the pending queue is at capacity."""


class Job:
    """One analysis request moving through queued -> running -> done or
    failed.  ``envelope`` is the protocol result envelope once done;
    ``error`` the failure message otherwise."""

    __slots__ = ("job_id", "sources", "entry", "config_overrides",
                 "bypass_cache", "state", "envelope", "error", "done",
                 "enqueued_depth")

    def __init__(self, job_id: str, sources: List[Tuple[str, str]],
                 entry: str, config_overrides: Dict,
                 bypass_cache: bool = False):
        self.job_id = job_id
        self.sources = sources
        self.entry = entry
        self.config_overrides = config_overrides
        self.bypass_cache = bypass_cache
        self.state = "queued"
        self.envelope: Optional[Dict] = None
        self.error: Optional[str] = None
        self.done = threading.Event()
        # Queue depth observed at submit time (surfaced per request).
        self.enqueued_depth = 0

    def finish(self, envelope: Dict) -> None:
        self.envelope = envelope
        self.state = "done"
        self.done.set()

    def fail(self, message: str) -> None:
        self.error = message
        self.state = "failed"
        self.done.set()


class JobQueue:
    """Bounded FIFO of Jobs with a registry for status/result lookups."""

    def __init__(self, max_queue: int = 64, max_finished: int = 256):
        self.max_queue = max_queue
        self.max_finished = max_finished
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._pending: "deque[Job]" = deque()
        self._jobs: Dict[str, Job] = {}
        self._finished_order: "deque[str]" = deque()
        self._ids = itertools.count(1)
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0

    def new_job_id(self) -> str:
        return f"job-{next(self._ids)}"

    def submit(self, job: Job) -> None:
        with self._lock:
            if self._closed:
                self.rejected += 1
                raise QueueFull("daemon is shutting down")
            if len(self._pending) >= self.max_queue:
                self.rejected += 1
                raise QueueFull(
                    f"queue full ({self.max_queue} jobs pending)")
            job.enqueued_depth = len(self._pending)
            self._pending.append(job)
            self._jobs[job.job_id] = job
            self.submitted += 1
            self._available.notify()

    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Blocks until a job is available or the queue is closed."""
        with self._lock:
            while not self._pending and not self._closed:
                if not self._available.wait(timeout):
                    return None
            if not self._pending:
                return None
            job = self._pending.popleft()
            job.state = "running"
            return job

    def job_done(self, job: Job) -> None:
        with self._lock:
            if job.state == "failed":
                self.failed += 1
            else:
                self.completed += 1
            self._finished_order.append(job.job_id)
            while len(self._finished_order) > self.max_finished:
                old = self._finished_order.popleft()
                self._jobs.pop(old, None)

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._available.notify_all()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "depth": len(self._pending),
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
            }
