"""On-disk stores for the serving layer: exact results and fixpoint
journals.

Both stores are content-addressed (keys are hex digests from
repro.serve.fingerprints), write atomically (write-to-temp + rename,
the same discipline as supervisor checkpoints) so a kill mid-write
never corrupts an entry, and evict by file mtime when a configured
entry bound is exceeded — cache warmth survives daemon restarts, disk
usage stays bounded.

Every entry is stored under a payload checksum: one line holding the
hex SHA-256 of the payload bytes, then the payload.  Reads verify it;
an entry that fails (truncated write that survived a crash, bit rot,
hand-editing) is **moved to a ``quarantine/`` subdirectory** — counted
as a miss, preserved for post-mortem, and never re-read or served.

A small in-memory layer fronts each store; its hit/miss/eviction
counters feed the daemon's ``stats`` protocol op.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Optional

__all__ = ["JournalStore", "ResultStore"]

_KEY_CHARS = set("0123456789abcdef")


def _safe_key(key: str) -> bool:
    return bool(key) and set(key) <= _KEY_CHARS


def _atomic_write(path: str, data: bytes) -> None:
    d = os.path.dirname(path)
    os.makedirs(d, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class _DiskStore:
    """Shared machinery: a directory of <key><ext> files with an
    in-memory LRU front and mtime-ordered disk eviction."""

    def __init__(self, directory: Optional[str], ext: str,
                 max_memory: int, max_disk: int):
        self.directory = directory
        self.ext = ext
        self.max_memory = max_memory
        self.max_disk = max_disk
        self._mem: "OrderedDict[str, object]" = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.quarantined = 0

    # -- encoding hooks ------------------------------------------------------

    def _encode(self, value) -> bytes:  # pragma: no cover - overridden
        raise NotImplementedError

    def _decode(self, data: bytes):  # pragma: no cover - overridden
        raise NotImplementedError

    # -- API -----------------------------------------------------------------

    def _path(self, key: str) -> Optional[str]:
        if self.directory is None or not _safe_key(key):
            return None
        return os.path.join(self.directory, f"{key}{self.ext}")

    def get(self, key: str):
        entry = self._mem.get(key)
        if entry is not None:
            self._mem.move_to_end(key)
            self.memory_hits += 1
            return entry
        path = self._path(key)
        if path is not None and os.path.exists(path):
            try:
                with open(path, "rb") as f:
                    data = f.read()
                value = self._decode(self._verify(data))
            except (OSError, ValueError):
                # A corrupt entry is a miss, never an error: move it
                # aside for post-mortem so it is never served or
                # re-read, and the key can be repopulated.
                self._quarantine(path)
                self.misses += 1
                return None
            self._remember(key, value)
            self.disk_hits += 1
            return value
        self.misses += 1
        return None

    @staticmethod
    def _checksum(payload: bytes) -> bytes:
        return hashlib.sha256(payload).hexdigest().encode() + b"\n"

    def _verify(self, data: bytes) -> bytes:
        """Strip and check the checksum header; ValueError on mismatch
        (including headerless files from before checksumming)."""
        header, sep, payload = data.partition(b"\n")
        if (not sep or len(header) != 64
                or header != self._checksum(payload)[:64]):
            raise ValueError("payload checksum mismatch")
        return payload

    def _quarantine(self, path: str) -> None:
        qdir = os.path.join(os.path.dirname(path), "quarantine")
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
            self.quarantined += 1
        except OSError:
            try:  # cannot move it: dropping beats re-reading garbage
                os.unlink(path)
            except OSError:
                pass

    def put(self, key: str, value) -> None:
        self.puts += 1
        self._remember(key, value)
        path = self._path(key)
        if path is None:
            return
        payload = self._encode(value)
        _atomic_write(path, self._checksum(payload) + payload)
        self._evict_disk()

    def _remember(self, key: str, value) -> None:
        self._mem[key] = value
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_memory:
            self._mem.popitem(last=False)

    def _evict_disk(self) -> None:
        if self.directory is None:
            return
        try:
            names = [n for n in os.listdir(self.directory)
                     if n.endswith(self.ext)]
        except OSError:
            return
        excess = len(names) - self.max_disk
        if excess <= 0:
            return
        paths = [os.path.join(self.directory, n) for n in names]

        def mtime(p: str) -> float:
            try:
                return os.path.getmtime(p)
            except OSError:
                return 0.0

        for p in sorted(paths, key=mtime)[:excess]:
            try:
                os.unlink(p)
                self.evictions += 1
            except OSError:
                pass

    def entry_count(self) -> int:
        if self.directory is None:
            return len(self._mem)
        try:
            return sum(1 for n in os.listdir(self.directory)
                       if n.endswith(self.ext))
        except OSError:
            return len(self._mem)

    def stats(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "memory_entries": len(self._mem),
            "disk_entries": self.entry_count(),
        }


class ResultStore(_DiskStore):
    """Exact-result cache: request key -> the stored response envelope
    (result payload + digest) of the cold run that populated it.  JSON
    on disk so entries are inspectable (``<cache>/results/<key>.json``)."""

    def __init__(self, cache_dir: Optional[str],
                 max_memory: int = 512, max_disk: int = 4096):
        directory = (os.path.join(cache_dir, "results")
                     if cache_dir else None)
        super().__init__(directory, ".json", max_memory, max_disk)

    def _encode(self, value) -> bytes:
        return (json.dumps(value, sort_keys=True, indent=1) + "\n").encode()

    def _decode(self, data: bytes):
        return json.loads(data.decode())


class JournalStore(_DiskStore):
    """Fixpoint-journal store: compat fingerprint -> the pickled
    per-statement (pre, post) journal of the most recent eligible run
    with that layout (``<cache>/fixpoint/<compat>.pkl``).  Values stay
    opaque bytes here — CrossRunCache.attach unpickles them (journals
    hold slim context-free footprint slices, so this is cheap)."""

    def __init__(self, cache_dir: Optional[str],
                 max_memory: int = 4, max_disk: int = 64):
        directory = (os.path.join(cache_dir, "fixpoint")
                     if cache_dir else None)
        super().__init__(directory, ".pkl", max_memory, max_disk)

    def _encode(self, value) -> bytes:
        return value

    def _decode(self, data: bytes):
        return data
