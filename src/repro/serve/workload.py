"""Near-duplicate edit workloads for the serving benchmark, tests and
CI.

The paper's deployment analyzed successive daily versions of one
program family; successive versions differ in a handful of tuned
constants, not in structure.  :func:`make_variant` models exactly that:
it perturbs one float literal of a generated family program (a gain, a
threshold, a filter coefficient) in the last decimal digit, leaving
every declaration and statement shape — and therefore the compat
fingerprint — intact.  The cross-run fixpoint cache then re-executes
only the slices the edited constant feeds.

All randomness is seeded: the same seed produces the same base program
and the same edit sequence, which is what lets CI pin a workload and
gate on its digests.
"""

from __future__ import annotations

import random
import re
from typing import List, Optional, Tuple

__all__ = ["base_program", "edit_sweep", "make_variant"]

# Float literals inside expressions (not array sizes / version macros).
_FLOAT_LIT = re.compile(r"(?<![\w.])(\d+\.\d+)f\b")


def base_program(kloc: float = 0.15, seed: int = 20080808):
    """The pinned family program the workload edits; returns the
    GeneratedProgram (source + input ranges + max clock)."""
    from ..synth import FamilySpec, generate_program

    return generate_program(FamilySpec(target_kloc=kloc, seed=seed))


def make_variant(source: str, edit_seed: int) -> str:
    """Perturb one float literal of ``source`` in its last decimal
    digit (never the leading digit, so magnitudes are preserved and the
    analysis stays well-conditioned).  ``edit_seed`` picks the literal
    and the new digit deterministically; seed 0 returns the source
    unchanged (the identity edit)."""
    if edit_seed == 0:
        return source
    lits = list(_FLOAT_LIT.finditer(source))
    if not lits:
        return source
    rng = random.Random(edit_seed)
    m = rng.choice(lits)
    text = m.group(1)
    digits = text.replace(".", "")
    last = text[-1]
    replacement = str((int(last) + rng.randint(1, 9)) % 10)
    new = text[:-1] + replacement
    if float(new) == 0.0 and float(text) != 0.0:
        new = text[:-1] + "1"  # keep divisors/gains nonzero
    return source[:m.start(1)] + new + source[m.end(1):]


def edit_sweep(source: str, seeds: List[int]) -> List[Tuple[int, str]]:
    """The (seed, variant source) list of one edit sweep."""
    return [(s, make_variant(source, s)) for s in seeds]
