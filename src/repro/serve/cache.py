"""The cross-run fixpoint cache and the warm frontend cache.

:class:`CrossRunCache` extends the intra-run incremental engine
(repro.iterator.incremental) across runs.  Intra-run, every statement
memoizes the (pre, post) states of its last execution and is spliced
whenever its incoming footprint slice agrees with the recorded pre.
Cross-run, one run additionally *journals* the deduplicated sequence of
(pre, post) pairs each statement produced — one entry per distinct
widening iterate — and a later run of a near-duplicate program replays
that journal as donor records: at each occurrence of a statement whose
record key matches (content, bindings and footprint identical — see
repro.serve.fingerprints.stmt_record_key), the donor pairs around the
trajectory cursor are checked with the same agreement test the
intra-run engine uses, and on agreement the recorded post is spliced.

Bit-identity argument: a donor pair is a true (pre, post) pair of a
statement with an equal record key under an equal compat fingerprint,
i.e. of the *same transfer function*.  The agreement check accepts only
when the incoming state coincides with the recorded pre on the
statement's entire footprint slice, and the splice patches exactly the
footprint's write set — the same two steps whose exactness the
intra-run engine's soundness argument establishes.  Which run the pair
was recorded in is therefore irrelevant: a warm run computes
bit-identical states, alarms and iteration counts to a cold one, it
just re-executes less.

Journals are never harvested from degraded runs (the ladder mutates the
effective configuration mid-run, so recorded pairs would mix transfer
semantics; the compat fingerprint of the degraded configuration also
differs from the requested one, so a degraded journal could never be
*served* to a full-precision request either way).
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .fingerprints import (compat_fingerprint, function_hashes,
                           stable_ordinals, stmt_content_hash,
                           stmt_record_key)

__all__ = ["CrossRunCache", "FrontendCache"]


class CrossRunCache:
    """One run's view of the cross-run fixpoint cache: donor journal in
    (from the previous run with the same compat fingerprint), fresh
    journal out.  Handed to :func:`repro.analysis.analyze_program` and
    consulted by the incremental sequence executors."""

    def __init__(self, journal_store=None, donor_bytes: Optional[bytes] = None,
                 harvest: bool = True, max_pairs_per_key: int = 128,
                 max_total_pairs: int = 250_000):
        self.journal_store = journal_store
        self._donor_bytes = donor_bytes
        # key -> list of slim pairs (repro.iterator.incremental.slim_pair).
        self.donor: Dict[str, List[Tuple]] = {}
        self.journal: Optional[Dict[str, List[Tuple]]] = (
            {} if harvest else None)
        # key -> (pre, post) identities of the last journaled occurrence,
        # for consecutive-duplicate suppression without re-slimming.
        self._last: Dict[str, Tuple[object, object]] = {}
        self.max_pairs_per_key = max_pairs_per_key
        self.max_total_pairs = max_total_pairs
        # Identity of the run this cache is attached to.
        self.ctx = None
        self.compat: Optional[str] = None
        self._gen0 = 0
        self.ordinals: Dict[int, int] = {}
        self.fn_hashes: Dict[str, str] = {}
        self._content_memo: Dict[int, str] = {}
        # Counters (surfaced via AnalysisResult and the daemon stats).
        self.seeded = 0          # statements that received donor pairs
        self.donor_pair_count = 0
        self.total_pairs = 0     # journal pairs recorded
        self.pairs_dropped = 0   # journal appends refused by the caps

    # -- lifecycle -----------------------------------------------------------

    def attach(self, ctx) -> None:
        """Bind to a built AnalysisContext: compute the stable keys and
        load the donor journal for this compat fingerprint.  Journals
        hold slim footprint slices of context-free values, so unpickling
        needs no live context."""
        self.ctx = ctx
        self._gen0 = ctx.config_generation
        self.compat = compat_fingerprint(ctx)
        self.ordinals = stable_ordinals(ctx.prog)
        self.fn_hashes = function_hashes(ctx.prog)
        self._content_memo = {}
        raw = self._donor_bytes
        if raw is None and self.journal_store is not None:
            raw = self.journal_store.get(self.compat)
        if raw:
            try:
                donor = pickle.loads(raw)
            except Exception:
                donor = {}  # a corrupt journal is a cold start, not an error
            if isinstance(donor, dict):
                self.donor = donor
                self.donor_pair_count = sum(
                    len(v) for v in donor.values())

    def active_for(self, it) -> bool:
        """True while the attached run's effective configuration is the
        one the keys were computed against (the degradation ladder bumps
        config_generation, after which donor pairs are stale and the
        journal is abandoned)."""
        return (self.ctx is it.ctx
                and it.ctx.config_generation == self._gen0)

    # -- keys ----------------------------------------------------------------

    def stmt_key(self, meta, frames_repr) -> str:
        sid = meta.stmt.sid
        ch = self._content_memo.get(sid)
        if ch is None:
            ch = stmt_content_hash(meta.stmt, self.fn_hashes)
            self._content_memo[sid] = ch
        site = self.ctx.filter_sites.site
        site_consts = tuple(
            (s, site(s).a, site(s).b) for s in meta.sites)
        return stmt_record_key(self.ordinals.get(sid, -1), ch,
                               frames_repr, meta, site_consts)

    def donor_pairs(self, key: str):
        return self.donor.get(key)

    # -- journaling ----------------------------------------------------------

    def record(self, key: str, meta, pre, post) -> None:
        """Journal one (pre, post) occurrence as its slim footprint
        slice, deduplicating consecutive identical pairs (converged
        iterations splice the same record over and over) and respecting
        the per-key and total caps."""
        j = self.journal
        if j is None:
            return
        last = self._last.get(key)
        if last is not None and last[0] is pre and last[1] is post:
            return
        from ..iterator.incremental import slim_pair

        lst = j.get(key)
        if lst is None:
            if self.total_pairs >= self.max_total_pairs:
                self.pairs_dropped += 1
                return
            j[key] = [slim_pair(meta, pre, post)]
        else:
            if (len(lst) >= self.max_pairs_per_key
                    or self.total_pairs >= self.max_total_pairs):
                self.pairs_dropped += 1
                return
            lst.append(slim_pair(meta, pre, post))
        self._last[key] = (pre, post)
        self.total_pairs += 1

    # -- harvest -------------------------------------------------------------

    def harvest_bytes(self, result) -> Optional[bytes]:
        """The pickled journal of this run, or None when the run is
        ineligible (degraded, configuration mutated mid-run, or nothing
        was journaled)."""
        if (self.journal is None or not self.journal or result.degraded
                or self.ctx is None
                or self.ctx.config_generation != self._gen0):
            return None
        return pickle.dumps(self.journal, protocol=pickle.HIGHEST_PROTOCOL)

    def store_harvest(self, result) -> bool:
        """Harvest and persist through the journal store; returns
        whether a journal was written."""
        if self.journal_store is None or self.compat is None:
            return False
        data = self.harvest_bytes(result)
        if data is None:
            return False
        self.journal_store.put(self.compat, data)
        return True


class FrontendCache:
    """Bounded in-memory cache of parsed+lowered IR programs, keyed by
    (source digest, entry).  Statement/variable/loop ids are assigned at
    lowering time, so a reused program carries identical ids — a repeat
    request skips the whole frontend and lands on identical coordinates."""

    def __init__(self, max_entries: int = 32):
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, src_digest: str, entry: str):
        key = (src_digest, entry)
        prog = self._entries.get(key)
        if prog is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return prog

    def put(self, src_digest: str, entry: str, prog) -> None:
        self._entries[(src_digest, entry)] = prog
        self._entries.move_to_end((src_digest, entry))
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}
