"""The analysis daemon: ``astree-repro serve``.

One process, one Unix-domain socket, one analysis worker.  Connections
get a thread each (protocol handling is I/O-bound and cheap); analysis
jobs run sequentially in the worker so the process-global warm state —
value intern pool, octagon closure memo, the active analysis context
journal unpickling resolves against — stays coherent.

The serving pipeline per job:

1. **Exact-result lookup.**  ``request_key`` (source digest + entry +
   configuration fingerprint) indexes the :class:`ResultStore`.  A hit
   returns the stored envelope in microseconds — the analyzer is
   deterministic, so the stored result *is* the result.
2. **Frontend cache.**  On a miss, the parsed+lowered IR program is
   reused from the :class:`FrontendCache` when the same (source, entry)
   was compiled before (fingerprinting still reruns per job; cell ids
   are assigned per context, not per program reuse).
3. **Cross-run fixpoint cache.**  The run is handed a
   :class:`CrossRunCache` wired to the :class:`JournalStore`: the donor
   journal of the previous run with the same compat fingerprint seeds
   the incremental engine, so only edited slices of a near-duplicate
   program re-execute.  The run's own journal is harvested back unless
   the run degraded.
4. **Store.**  Non-degraded results are written to the result store
   (atomic, survives restarts); degraded results are served but never
   cached — a retry with a higher budget must not be answered with the
   coarse verdict.

Every job runs under per-job supervisor budgets (defaults below,
overridable per request) so one pathological input degrades or dies
under the supervisor instead of wedging the daemon.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..config import AnalyzerConfig
from .cache import CrossRunCache, FrontendCache
from .fingerprints import (request_key, result_digest, result_payload,
                           source_digest)
from .jobs import Job, JobQueue, QueueFull
from .protocol import ProtocolError, error_response, recv_message, send_message
from .store import JournalStore, ResultStore

__all__ = ["AnalysisServer", "ServeConfig"]


@dataclasses.dataclass
class ServeConfig:
    """Daemon settings (CLI: ``astree-repro serve``)."""

    socket_path: str = "astree-serve.sock"
    cache_dir: Optional[str] = None  # None: in-memory caches only
    max_queue: int = 64
    # Per-job supervisor budget defaults; requests may override.
    job_deadline_s: Optional[float] = 300.0
    job_rss_limit_kib: Optional[int] = None
    # Base configuration jobs start from before request overrides.
    base_config: AnalyzerConfig = dataclasses.field(
        default_factory=AnalyzerConfig)


# Configuration fields a request may override.  Everything else is the
# daemon operator's call; rejecting unknown keys early gives clients a
# real error instead of a silently ignored knob.
_CLIENT_FIELDS = frozenset({
    "input_ranges", "max_clock", "default_unroll", "partition_functions",
    "enable_octagons", "enable_ellipsoids", "enable_decision_trees",
    "enable_clock", "collect_invariants", "trace", "incremental", "jobs",
    "wall_deadline_s", "rss_limit_kib", "stmt_timeout_s",
})


def _decode_overrides(raw: Dict) -> Dict:
    """JSON-decoded config overrides -> AnalyzerConfig field values
    (tuples and sets do not survive JSON; rebuild them)."""
    out: Dict = {}
    for key, value in raw.items():
        if key not in _CLIENT_FIELDS:
            raise ValueError(f"config field not settable over serve: {key}")
        if key == "input_ranges":
            value = {name: (float(lo), float(hi))
                     for name, (lo, hi) in dict(value).items()}
        elif key == "partition_functions":
            value = set(value)
        out[key] = value
    return out


class AnalysisServer:
    """The long-lived daemon.  ``serve_forever`` blocks until a
    ``shutdown`` request (or ``stop()``) arrives."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.queue = JobQueue(max_queue=config.max_queue)
        self.results = ResultStore(config.cache_dir)
        self.journals = JournalStore(config.cache_dir)
        self.frontend = FrontendCache()
        self.started_at = time.monotonic()
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        # Serving counters (the stats op).
        self.requests = 0
        self.result_hits = 0
        self.cold_runs = 0
        self.warm_runs = 0       # runs that spliced >= 1 donor record
        self.degraded_runs = 0
        self.cold_wall_s = 0.0
        self.warm_wall_s = 0.0
        self.journal_harvests = 0

    # -- job execution (worker thread) ---------------------------------------

    def _job_config(self, job: Job) -> AnalyzerConfig:
        overrides = _decode_overrides(job.config_overrides)
        sc = self.config
        if "wall_deadline_s" not in overrides and sc.job_deadline_s:
            overrides["wall_deadline_s"] = sc.job_deadline_s
        if "rss_limit_kib" not in overrides and sc.job_rss_limit_kib:
            overrides["rss_limit_kib"] = sc.job_rss_limit_kib
        return sc.base_config.with_overrides(**overrides)

    def run_job(self, job: Job) -> Dict:
        """Serve one job through the cache pipeline; returns the result
        envelope.  Raising is reserved for protocol-level bugs — analysis
        errors are caught here and turned into failure envelopes."""
        t0 = time.perf_counter()
        self.requests += 1
        cfg = self._job_config(job)
        src_digest = source_digest(job.sources)
        rkey = request_key(src_digest, job.entry, cfg)
        if not job.bypass_cache:
            stored = self.results.get(rkey)
            if stored is not None:
                self.result_hits += 1
                return {
                    "ok": True, "job_id": job.job_id, "cached": True,
                    "digest": stored["digest"], "result": stored["result"],
                    "wall_s": time.perf_counter() - t0,
                    "queue_depth": job.enqueued_depth,
                }

        from ..analysis import analyze_program
        from ..frontend import compile_source, link_sources

        prog = self.frontend.get(src_digest, job.entry)
        parse_s = 0.0
        if prog is None:
            p0 = time.perf_counter()
            if len(job.sources) == 1:
                name, text = job.sources[0]
                prog = compile_source(text, name, entry=job.entry)
            else:
                prog = link_sources(list(job.sources), entry=job.entry)
            parse_s = time.perf_counter() - p0
            self.frontend.put(src_digest, job.entry, prog)

        cross_run = None
        if cfg.incremental and not cfg.trace and not job.bypass_cache:
            cross_run = CrossRunCache(journal_store=self.journals)
        result = analyze_program(prog, cfg, parse_seconds=parse_s,
                                 cross_run=cross_run)

        payload = result_payload(result)
        digest = result_digest(payload)
        wall = time.perf_counter() - t0
        if result.degraded:
            self.degraded_runs += 1
        elif result.cross_run_hits > 0:
            self.warm_runs += 1
            self.warm_wall_s += wall
        else:
            self.cold_runs += 1
            self.cold_wall_s += wall
        if cross_run is not None and cross_run.store_harvest(result):
            self.journal_harvests += 1
        if not result.degraded and not job.bypass_cache:
            self.results.put(rkey, {"digest": digest, "result": payload})
        return {
            "ok": True, "job_id": job.job_id, "cached": False,
            "digest": digest, "result": payload, "wall_s": wall,
            "queue_depth": job.enqueued_depth,
        }

    def _worker(self) -> None:
        while True:
            job = self.queue.next_job()
            if job is None:
                return
            try:
                job.finish(self.run_job(job))
            except Exception as e:  # analysis failure -> failed job
                job.fail(f"{type(e).__name__}: {e}")
            finally:
                self.queue.job_done(job)

    # -- request handling (connection threads) -------------------------------

    def _handle(self, msg: Dict) -> Dict:
        op = msg.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "uptime_s": time.monotonic() - self.started_at}
        if op == "submit":
            return self._op_submit(msg)
        if op == "status":
            job = self.queue.get(str(msg.get("job_id")))
            if job is None:
                return error_response("unknown job_id")
            return {"ok": True, "job_id": job.job_id, "state": job.state,
                    "queue_depth": self.queue.depth()}
        if op == "result":
            job = self.queue.get(str(msg.get("job_id")))
            if job is None:
                return error_response("unknown job_id")
            job.done.wait()
            if job.state == "failed":
                return error_response(job.error or "job failed",
                                      job_id=job.job_id)
            return job.envelope
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "shutdown":
            self._stop.set()
            return {"ok": True, "stopping": True}
        return error_response(f"unknown op: {op!r}")

    def _op_submit(self, msg: Dict) -> Dict:
        raw = msg.get("sources")
        if (not isinstance(raw, list) or not raw
                or not all(isinstance(p, (list, tuple)) and len(p) == 2
                           for p in raw)):
            return error_response(
                "submit needs sources: [[filename, text], ...]")
        sources = [(str(n), str(t)) for n, t in raw]
        entry = str(msg.get("entry", "main"))
        overrides = msg.get("config") or {}
        if not isinstance(overrides, dict):
            return error_response("config must be an object")
        try:
            _decode_overrides(overrides)  # validate before queueing
        except (ValueError, TypeError) as e:
            return error_response(str(e))
        job = Job(self.queue.new_job_id(), sources, entry, overrides,
                  bypass_cache=bool(msg.get("bypass_cache", False)))
        try:
            self.queue.submit(job)
        except QueueFull as e:
            return error_response(str(e), retryable=True)
        if not msg.get("wait", True):
            return {"ok": True, "job_id": job.job_id,
                    "queue_depth": job.enqueued_depth}
        job.done.wait()
        if job.state == "failed":
            return error_response(job.error or "job failed",
                                  job_id=job.job_id)
        return job.envelope

    def stats(self) -> Dict:
        from ..domains.octagon import closure_memo_stats

        ch, csize, cev = closure_memo_stats()
        warm_avg = self.warm_wall_s / self.warm_runs if self.warm_runs else 0.0
        cold_avg = self.cold_wall_s / self.cold_runs if self.cold_runs else 0.0
        return {
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self.started_at,
            "requests": self.requests,
            "result_cache": dict(self.results.stats(),
                                 hits=self.result_hits),
            "journal_store": dict(self.journals.stats(),
                                  harvests=self.journal_harvests),
            "frontend_cache": self.frontend.stats(),
            "closure_memo": {"hits": ch, "entries": csize,
                             "evictions": cev},
            "runs": {
                "cold": self.cold_runs, "warm": self.warm_runs,
                "degraded": self.degraded_runs,
                "cold_avg_wall_s": cold_avg,
                "warm_avg_wall_s": warm_avg,
            },
            "queue": self.queue.stats(),
        }

    # -- socket plumbing -----------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            reader = conn.makefile("rb")
            while not self._stop.is_set():
                try:
                    msg = recv_message(reader)
                except ProtocolError as e:
                    send_message(conn, error_response(str(e)))
                    return
                if msg is None:
                    return
                send_message(conn, self._handle(msg))
        except OSError:
            pass  # client went away; nothing to do
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def serve_forever(self) -> None:
        path = self.config.socket_path
        # A stale socket file from a crashed daemon would block bind.
        try:
            os.unlink(path)
        except OSError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        worker = threading.Thread(target=self._worker, name="analysis-worker",
                                  daemon=True)
        worker.start()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                t = threading.Thread(target=self._serve_connection,
                                     args=(conn,), daemon=True)
                t.start()
                self._threads.append(t)
        finally:
            self.queue.close()
            worker.join(timeout=10.0)
            listener.close()
            try:
                os.unlink(path)
            except OSError:
                pass

    def stop(self) -> None:
        self._stop.set()
