"""The analysis daemon: ``astree-repro serve``.

One parent process, one Unix-domain socket, one *supervised analysis
worker subprocess*.  Connections get a thread each (protocol handling
is I/O-bound and cheap); analysis jobs run sequentially through the
worker so its process-global warm state — value intern pool, octagon
closure memo, the active analysis context journal unpickling resolves
against — stays coherent.

The crash-isolation split (ISSUE 7): the parent owns everything that
must survive a crashing job — the accepted queue, the exact-result
store, the poison quarantine — while the worker subprocess owns the
warm per-process analysis state (frontend cache, journal store, intern
pools).  A job that segfaults, OOMs, or wedges the worker kills *one
subprocess*: the supervisor (repro.serve.supervise) restarts it with
seeded exponential backoff, retries the in-flight job once on a fresh
worker, and quarantines request keys that kill workers twice under one
stable crash signature.  ``--no-isolate-jobs`` falls back to running
the same pipeline in-process (no isolation, no subprocess overhead).

The serving pipeline per job:

1. **Quarantine check.**  A poisoned request key is answered with a
   structured ``poisoned`` error without touching a worker (a
   ``bypass_cache`` run skips the check and, on success, re-admits the
   key).
2. **Exact-result lookup.**  ``request_key`` (source digest + entry +
   configuration fingerprint) indexes the :class:`ResultStore`.  A hit
   returns the stored envelope in microseconds — the analyzer is
   deterministic, so the stored result *is* the result.
3. **Dispatch to the worker** (repro.serve.worker), which runs the
   frontend cache -> cross-run fixpoint cache -> analysis -> journal
   harvest pipeline and replies with a result envelope over
   length-prefixed pipe frames.
4. **Store.**  Non-degraded results are written to the result store
   (atomic, checksummed, survives restarts); degraded results are
   served but never cached — a retry with a higher budget must not be
   answered with the coarse verdict.  Results produced after a crash
   retry are cached only because they are *complete successful runs*;
   a crashed or cancelled job never reaches the store.

Shutdown is a *drain*: ``stop()`` (or SIGTERM/SIGINT via the CLI, or
the ``shutdown`` op) stops accepting submissions, lets the in-flight
job finish within ``drain_deadline_s``, then escalates — queued jobs
fail with retryable cancellation envelopes, the worker is killed — and
always flushes stores, removes the socket file, and returns (exit 0).

Every job runs under per-job supervisor budgets (defaults below,
overridable per request) so one pathological input degrades or dies
under the in-analysis supervisor instead of wedging the daemon;
``job_hard_timeout_s`` adds an outer parent-side ceiling after which
the worker itself is killed.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import sys
import threading
import time
from typing import Dict, List, Optional

from ..config import AnalyzerConfig
from ..errors import ServeError
from .fingerprints import request_key, source_digest
from .jobs import (Job, JobQueue, QueueFull, decode_overrides,
                   effective_config)
from .protocol import ProtocolError, error_response, recv_message, send_message
from .store import ResultStore
from .supervise import PoisonRegistry, WorkerCrashed, WorkerSupervisor
from .worker import InProcessExecutor

__all__ = ["AnalysisServer", "ServeConfig"]


@dataclasses.dataclass
class ServeConfig:
    """Daemon settings (CLI: ``astree-repro serve``)."""

    socket_path: str = "astree-serve.sock"
    cache_dir: Optional[str] = None  # None: in-memory caches only
    max_queue: int = 64
    # Per-job supervisor budget defaults; requests may override.
    job_deadline_s: Optional[float] = 300.0
    job_rss_limit_kib: Optional[int] = None
    # Parent-side hard ceiling per dispatch: the worker is killed (and
    # the job fails with a stable timeout signature) after this many
    # seconds.  None: rely on the in-analysis supervisor budgets only.
    job_hard_timeout_s: Optional[float] = None
    # Crash isolation: run jobs in a supervised worker subprocess.
    isolate_jobs: bool = True
    # Graceful-drain budget for the in-flight job on shutdown.
    drain_deadline_s: float = 10.0
    # Worker restart pacing (exponential backoff base; the seed pins
    # the jitter sequence for deterministic chaos tests).
    restart_backoff_s: float = 0.05
    backoff_seed: Optional[int] = None
    # Journal-warmed result validation (repro.certify): "off",
    # "sampled" (deterministic 1-in-8 by source digest), or "all".
    # A warm result that fails certification is never cached or
    # returned — it is discarded and the job re-runs cold.
    certify_serve: str = "sampled"
    # Base configuration jobs start from before request overrides.
    base_config: AnalyzerConfig = dataclasses.field(
        default_factory=AnalyzerConfig)


class AnalysisServer:
    """The long-lived daemon.  ``serve_forever`` blocks until a
    ``shutdown`` request (or ``stop()``, or a handled signal) arrives,
    then drains and cleans up before returning."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.queue = JobQueue(max_queue=config.max_queue)
        self.results = ResultStore(config.cache_dir)
        self.poison = PoisonRegistry(config.cache_dir)
        if config.isolate_jobs:
            from .fingerprints import config_fingerprint

            if (config_fingerprint(config.base_config)
                    != config_fingerprint(AnalyzerConfig())):
                # The worker builds its configs from the stock defaults;
                # a semantically different base would silently disagree
                # with the parent's request keys.  Refuse loudly instead.
                raise ServeError(
                    "isolate_jobs does not support a semantically "
                    "non-default base_config; pass isolate_jobs=False")
            self.executor = WorkerSupervisor(
                cache_dir=config.cache_dir,
                backoff_base_s=config.restart_backoff_s,
                backoff_seed=config.backoff_seed,
                certify_mode=config.certify_serve)
        else:
            self.executor = InProcessExecutor(config.cache_dir,
                                              config.base_config,
                                              config.certify_serve)
        self.started_at = time.monotonic()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        # Serving counters (the stats op).
        self.requests = 0
        self.result_hits = 0
        self.cold_runs = 0
        self.warm_runs = 0       # runs that spliced >= 1 donor record
        self.degraded_runs = 0
        self.cold_wall_s = 0.0
        self.warm_wall_s = 0.0
        self.journal_harvests = 0
        self.job_retries = 0
        self.poisoned_refusals = 0
        self.certified_runs = 0
        self.certify_rejections = 0
        self.incidents: List[str] = []

    def _incident(self, message: str) -> None:
        self.incidents.append(message)
        print(f"astree-repro serve: {message}", file=sys.stderr, flush=True)

    # -- job execution (dispatcher thread) -----------------------------------

    def _job_defaults(self) -> Dict:
        return {"deadline_s": self.config.job_deadline_s,
                "rss_kib": self.config.job_rss_limit_kib}

    def _serve_job(self, job: Job) -> None:
        """Drive one job to completion: quarantine check, exact-result
        lookup, worker dispatch with one crash retry.  Always settles
        the job (finish or fail); raising is reserved for bugs."""
        t0 = time.perf_counter()
        self.requests += 1
        cfg = effective_config(self.config.base_config,
                               job.config_overrides,
                               self.config.job_deadline_s,
                               self.config.job_rss_limit_kib)
        rkey = request_key(source_digest(job.sources), job.entry, cfg)

        if not job.bypass_cache:
            entry = self.poison.check(rkey)
            if entry is not None:
                self.poisoned_refusals += 1
                job.fail(
                    f"job is quarantined: it crashed the analysis worker "
                    f"{entry['crashes']} times [{entry['signature']}]; "
                    f"resubmit with bypass_cache to re-admit it",
                    poisoned=True, signature=entry["signature"],
                    request_key=rkey)
                return
            stored = self.results.get(rkey)
            if stored is not None:
                self.result_hits += 1
                job.finish({
                    "ok": True, "job_id": job.job_id, "cached": True,
                    "digest": stored["digest"], "result": stored["result"],
                    "wall_s": time.perf_counter() - t0,
                    "queue_depth": job.enqueued_depth,
                })
                return

        try:
            reply = self.executor.run_job(
                job, self._job_defaults(),
                hard_timeout_s=self.config.job_hard_timeout_s)
        except WorkerCrashed as first:
            self._crash_retry(job, rkey, first, t0)
            return
        except ServeError as e:
            job.fail(str(e), retryable=True)
            return
        self._finish_run(job, rkey, reply, t0)

    def _crash_retry(self, job: Job, rkey: str, first: WorkerCrashed,
                     t0: float) -> None:
        """The job took the worker down.  Count the crash; retry once
        on a fresh worker unless the signature already poisons the key
        or the daemon is draining (a drain kills the worker on purpose
        — that death must neither count against the job nor retry)."""
        if self._draining.is_set():
            job.fail("cancelled: daemon is draining", retryable=True,
                     cancelled=True)
            return
        count = self.poison.record_crash(rkey, first.signature)
        if count >= self.poison.poison_threshold:
            self._quarantine(job, rkey, first)
            return
        self.job_retries += 1
        self._incident(
            f"job {job.job_id} crashed the worker "
            f"[{first.signature}]; retrying once on a fresh worker")
        try:
            reply = self.executor.run_job(
                job, self._job_defaults(),
                hard_timeout_s=self.config.job_hard_timeout_s)
        except WorkerCrashed as second:
            if self._draining.is_set():
                job.fail("cancelled: daemon is draining", retryable=True,
                         cancelled=True)
                return
            count = self.poison.record_crash(rkey, second.signature)
            if count >= self.poison.poison_threshold:
                self._quarantine(job, rkey, second)
            else:
                # Two crashes under *different* signatures: flaky, not
                # provably poisonous.  Fail retryable with both.
                job.fail(
                    f"worker crashed twice under this job with differing "
                    f"signatures ({first.signature} then "
                    f"{second.signature})", retryable=True,
                    signatures=[first.signature, second.signature])
            return
        except ServeError as e:
            job.fail(str(e), retryable=True)
            return
        self._finish_run(job, rkey, reply, t0)

    def _quarantine(self, job: Job, rkey: str,
                    crash: WorkerCrashed) -> None:
        entry = self.poison.mark_poisoned(rkey, crash.signature)
        self._incident(
            f"job {job.job_id} quarantined: request key {rkey[:16]}... "
            f"crashed the worker {entry['crashes']} times "
            f"[{crash.signature}]")
        job.fail(
            f"job quarantined: it crashed the analysis worker "
            f"{entry['crashes']} times [{crash.signature}] "
            f"({crash.exit_status}); resubmit with bypass_cache to "
            f"re-admit it",
            poisoned=True, signature=crash.signature, request_key=rkey)

    def _finish_run(self, job: Job, rkey: str, reply: Dict,
                    t0: float) -> None:
        """Account a worker envelope and settle the job."""
        if not reply.get("ok"):
            job.fail_envelope(dict(reply, job_id=job.job_id))
            return
        payload = reply.get("result") or {}
        wall = time.perf_counter() - t0
        degraded = bool(reply.get("degraded"))
        if degraded:
            self.degraded_runs += 1
        elif payload.get("cross_run_hits", 0) > 0:
            self.warm_runs += 1
            self.warm_wall_s += wall
        else:
            self.cold_runs += 1
            self.cold_wall_s += wall
        if reply.get("harvested"):
            self.journal_harvests += 1
        if reply.get("certified"):
            self.certified_runs += 1
        if reply.get("certify_rejected"):
            self.certify_rejections += 1
            self._incident(
                f"job {job.job_id}: journal-warmed result failed "
                f"certification; served the certified cold re-run")
        # A complete successful run clears the key's crash history (and
        # for bypass runs, its quarantine entry: operator re-admission).
        self.poison.clear(rkey)
        if not degraded and not job.bypass_cache:
            self.results.put(rkey, {"digest": reply["digest"],
                                    "result": payload})
        job.finish({
            "ok": True, "job_id": job.job_id, "cached": False,
            "digest": reply["digest"], "result": payload, "wall_s": wall,
            "queue_depth": job.enqueued_depth,
        })

    def _dispatcher(self) -> None:
        while True:
            job = self.queue.next_job()
            if job is None:
                return
            try:
                self._serve_job(job)
            except Exception as e:  # defensive: never kill the loop
                job.fail(f"{type(e).__name__}: {e}")
            finally:
                self.queue.job_done(job)

    # -- request handling (connection threads) -------------------------------

    def _handle(self, msg: Dict) -> Dict:
        op = msg.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "uptime_s": time.monotonic() - self.started_at}
        if op == "submit":
            return self._op_submit(msg)
        if op == "status":
            job = self.queue.get(str(msg.get("job_id")))
            if job is None:
                return error_response("unknown job_id")
            return {"ok": True, "job_id": job.job_id, "state": job.state,
                    "queue_depth": self.queue.depth()}
        if op == "result":
            job = self.queue.get(str(msg.get("job_id")))
            if job is None:
                return error_response("unknown job_id")
            job.done.wait()
            return job.envelope
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "health":
            return {"ok": True, "health": self.health()}
        if op == "shutdown":
            self._stop.set()
            return {"ok": True, "stopping": True}
        return error_response(f"unknown op: {op!r}")

    def _retry_after_hint(self) -> float:
        """Rough seconds-until-capacity for load-shed responses: queue
        depth times the observed average run time."""
        runs = self.cold_runs + self.warm_runs
        avg = ((self.cold_wall_s + self.warm_wall_s) / runs
               if runs else 1.0)
        return round(min(60.0, max(0.5, avg * (self.queue.depth() + 1))), 2)

    def _op_submit(self, msg: Dict) -> Dict:
        if self._draining.is_set() or self._stop.is_set():
            return error_response("daemon is draining", retryable=True,
                                  retry_after_s=self._retry_after_hint())
        raw = msg.get("sources")
        if (not isinstance(raw, list) or not raw
                or not all(isinstance(p, (list, tuple)) and len(p) == 2
                           for p in raw)):
            return error_response(
                "submit needs sources: [[filename, text], ...]")
        sources = [(str(n), str(t)) for n, t in raw]
        entry = str(msg.get("entry", "main"))
        overrides = msg.get("config") or {}
        if not isinstance(overrides, dict):
            return error_response("config must be an object")
        try:
            decode_overrides(overrides)  # validate before queueing
        except (ValueError, TypeError) as e:
            return error_response(str(e))
        job = Job(self.queue.new_job_id(), sources, entry, overrides,
                  bypass_cache=bool(msg.get("bypass_cache", False)))
        try:
            self.queue.submit(job)
        except QueueFull as e:
            return error_response(str(e), retryable=True,
                                  retry_after_s=self._retry_after_hint())
        if not msg.get("wait", True):
            return {"ok": True, "job_id": job.job_id,
                    "queue_depth": job.enqueued_depth}
        job.done.wait()
        return job.envelope

    def stats(self) -> Dict:
        worker = self.executor.cache_stats() or {}
        warm_avg = self.warm_wall_s / self.warm_runs if self.warm_runs else 0.0
        cold_avg = self.cold_wall_s / self.cold_runs if self.cold_runs else 0.0
        return {
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self.started_at,
            "requests": self.requests,
            "result_cache": dict(self.results.stats(),
                                 hits=self.result_hits),
            "journal_store": dict(worker.get("journal_store", {}),
                                  harvests=self.journal_harvests),
            "frontend_cache": worker.get("frontend_cache", {}),
            "closure_memo": worker.get("closure_memo",
                                       {"hits": 0, "entries": 0,
                                        "evictions": 0}),
            "worker": self.executor.health(),
            "quarantine": dict(self.poison.stats(),
                               refusals=self.poisoned_refusals),
            "certify": {
                "mode": self.config.certify_serve,
                "certified": self.certified_runs,
                "rejections": self.certify_rejections,
            },
            "runs": {
                "cold": self.cold_runs, "warm": self.warm_runs,
                "degraded": self.degraded_runs,
                "retries": self.job_retries,
                "cold_avg_wall_s": cold_avg,
                "warm_avg_wall_s": warm_avg,
            },
            "queue": self.queue.stats(),
        }

    def health(self) -> Dict:
        """The ``health`` op: cheap liveness/capacity snapshot (never
        blocks behind a running job)."""
        return {
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self.started_at,
            "draining": self._draining.is_set(),
            "queue_depth": self.queue.depth(),
            "worker": self.executor.health(),
            "quarantine_size": self.poison.size(),
            "incidents": len(self.incidents),
        }

    # -- socket plumbing -----------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            reader = conn.makefile("rb")
            while not self._stop.is_set():
                try:
                    msg = recv_message(reader)
                except ProtocolError as e:
                    send_message(conn, error_response(str(e)))
                    return
                if msg is None:
                    return
                send_message(conn, self._handle(msg))
        except OSError:
            pass  # client went away; nothing to do
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _bind_listener(self) -> socket.socket:
        """Bind the Unix socket, recovering from a stale socket file
        left by a crashed daemon: probe-connect first — refuse only if
        something actually answers."""
        path = self.config.socket_path
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(1.0)
            try:
                probe.connect(path)
            except (ConnectionRefusedError, FileNotFoundError,
                    socket.timeout):
                self._incident(f"removed stale socket {path} "
                               f"(nothing listening)")
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
            except OSError as e:
                raise ServeError(f"socket path {path} is unusable: {e}")
            else:
                raise ServeError(f"a daemon is already listening on {path}")
            finally:
                probe.close()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(path)
        except OSError as e:
            listener.close()
            raise ServeError(f"cannot bind {path}: {e}")
        listener.listen(16)
        listener.settimeout(0.2)
        return listener

    def serve_forever(self) -> None:
        listener = self._bind_listener()
        self._listener = listener
        self.executor.ensure_started()
        dispatcher = threading.Thread(target=self._dispatcher,
                                      name="job-dispatcher", daemon=True)
        dispatcher.start()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    if len(self._threads) > 64:
                        self._threads = [t for t in self._threads
                                         if t.is_alive()]
                    continue
                except OSError:
                    break
                t = threading.Thread(target=self._serve_connection,
                                     args=(conn,), daemon=True)
                t.start()
                self._threads.append(t)
        finally:
            self._shutdown_sequence(dispatcher, listener)

    def _shutdown_sequence(self, dispatcher: threading.Thread,
                           listener: socket.socket) -> None:
        """Drain, escalate, flush, clean up.  Runs to completion even
        when escalation is needed — the daemon always exits cleanly."""
        self._draining.set()
        self.queue.close()  # no new submits; wakes an idle dispatcher
        deadline = time.monotonic() + max(0.0, self.config.drain_deadline_s)
        while self.queue.busy() and time.monotonic() < deadline:
            time.sleep(0.05)
        if self.queue.busy():
            n = self.queue.cancel_pending(
                "cancelled: daemon drain deadline exceeded")
            self._incident(
                f"drain deadline ({self.config.drain_deadline_s:.1f}s) "
                f"exceeded: cancelled {n} queued job(s), aborting the "
                f"in-flight job")
            self.executor.abort_current()
        dispatcher.join(timeout=10.0)
        if dispatcher.is_alive():
            # Never silently leak a live dispatcher: escalate once more,
            # then record the incident if it still will not die.
            self._incident("dispatcher did not exit at drain deadline; "
                           "killing the worker")
            self.executor.abort_current()
            self.queue.cancel_pending("cancelled: daemon is shutting down")
            dispatcher.join(timeout=5.0)
            if dispatcher.is_alive():
                self._incident("dispatcher thread leaked past shutdown "
                               "escalation (daemonic; abandoning it)")
        # Let connection threads flush final responses for settled jobs.
        flush_deadline = time.monotonic() + 2.0
        for t in self._threads:
            t.join(timeout=max(0.0, flush_deadline - time.monotonic()))
        self.executor.shutdown()
        self.poison.flush()
        listener.close()
        try:
            os.unlink(self.config.socket_path)
        except OSError:
            pass

    def stop(self) -> None:
        self._stop.set()
