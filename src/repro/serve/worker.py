"""The analysis worker: job execution out of the daemon's process.

``python -m repro.serve.worker`` is the supervised subprocess the
daemon dispatches jobs to (see repro.serve.supervise).  It owns the
*warm* per-process analysis state — value intern pool, octagon closure
memo, frontend cache, the journal store the cross-run cache replays —
so a worker that dies takes one job's warmth with it, never the daemon,
its exact-result store, or its accepted queue.  The channel is
length-prefixed JSON frames (repro.serve.protocol) on stdin/stdout:
the real stdout fd is claimed for frames before any analysis code runs
and fd 1 is re-pointed at stderr, so a stray ``print`` in analysis code
can never corrupt the framing.

Frame ops: ``run`` (a job; replies with the result envelope — analysis
*errors* are caught and returned as ``ok: false`` envelopes, only a
process death is a crash), ``ping``, ``stats``, ``exit``.

:class:`JobExecutor` is the actual pipeline (frontend cache ->
cross-run fixpoint cache -> analysis -> journal harvest); the daemon
reuses it in-process under ``--no-isolate-jobs``, and the exact-result
layer stays in the daemon either way.

Chaos fault-injection hooks (tests/CI only), all deterministic:

* ``REPRO_FAULT_SERVE_WORKER_CRASH=<marker>`` — the first ``run`` to
  claim the marker file (by unlinking it) SIGKILLs the worker mid-job;
* ``REPRO_FAULT_SERVE_POISON_SUBSTR=<text>`` — every ``run`` whose
  sources contain the text SIGKILLs the worker (a reliably
  worker-killing job, which the daemon must quarantine);
* ``REPRO_FAULT_SERVE_TRUNCATE_FRAME=<marker>`` — the first ``run`` to
  claim the marker writes only half of its response frame and exits
  (a half-written protocol frame, which the daemon must classify as a
  worker death, not mis-parse).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import struct
import sys
import time
from typing import Dict, List, Optional, Tuple

from .cache import CrossRunCache, FrontendCache
from .fingerprints import result_digest, result_payload, source_digest
from .jobs import effective_config
from .protocol import ProtocolError, recv_frame, send_frame
from .store import JournalStore

__all__ = ["JobExecutor", "InProcessExecutor", "main"]


class JobExecutor:
    """One worker's warm job pipeline: frontend cache, journal store,
    cross-run fixpoint cache, per-job supervisor budgets.  The
    exact-result store is *not* consulted here — the parent daemon
    answers exact hits without involving a worker at all."""

    def __init__(self, cache_dir: Optional[str] = None, base_config=None,
                 certify_mode: str = "off"):
        from ..config import AnalyzerConfig

        self.base_config = base_config or AnalyzerConfig()
        self.journals = JournalStore(cache_dir)
        self.frontend = FrontendCache()
        self.jobs_run = 0
        self.journal_harvests = 0
        # Journal-warmed result validation (repro.certify): "off",
        # "sampled" (deterministic 1-in-8 by source digest), or "all".
        assert certify_mode in ("off", "sampled", "all")
        self.certify_mode = certify_mode
        self.certified_runs = 0
        self.certify_rejections = 0

    def run(self, msg: Dict) -> Dict:
        """Execute one ``run`` frame; always returns an envelope.
        Analysis failures are ``ok: false`` envelopes — raising is
        reserved for protocol-level bugs."""
        job_id = str(msg.get("job_id", "?"))
        try:
            return self._run(job_id, msg)
        except Exception as e:  # analysis failure -> failed-job envelope
            return {"ok": False, "job_id": job_id,
                    "error": f"{type(e).__name__}: {e}",
                    "worker_stats": self.stats()}

    def _run(self, job_id: str, msg: Dict) -> Dict:
        from ..analysis import analyze_program
        from ..frontend import compile_source, link_sources

        t0 = time.perf_counter()
        self.jobs_run += 1
        sources: List[Tuple[str, str]] = [
            (str(n), str(t)) for n, t in msg["sources"]]
        entry = str(msg.get("entry", "main"))
        bypass = bool(msg.get("bypass_cache", False))
        defaults = msg.get("defaults") or {}
        cfg = effective_config(self.base_config,
                               msg.get("config_overrides") or {},
                               defaults.get("deadline_s"),
                               defaults.get("rss_kib"))
        src_digest = source_digest(sources)

        prog = self.frontend.get(src_digest, entry)
        parse_s = 0.0
        if prog is None:
            p0 = time.perf_counter()
            if len(sources) == 1:
                name, text = sources[0]
                prog = compile_source(text, name, entry=entry)
            else:
                prog = link_sources(list(sources), entry=entry)
            parse_s = time.perf_counter() - p0
            self.frontend.put(src_digest, entry, prog)

        if self.certify_mode != "off":
            # Record invariant certificates during the run so a
            # journal-warmed result can be validated before it is
            # cached or returned (certify is a non-semantic field:
            # request keys and journal compatibility are unchanged).
            cfg = cfg.with_overrides(certify=True)
        cross_run = None
        if cfg.incremental and not cfg.trace and not bypass:
            cross_run = CrossRunCache(journal_store=self.journals)
        result = analyze_program(prog, cfg, parse_seconds=parse_s,
                                 cross_run=cross_run)

        certified = False
        rejected = False
        if self._should_certify(result, src_digest):
            from ..certify import certify_result
            from ..errors import CertificateError

            try:
                certify_result(result, sources)
                certified = True
            except CertificateError as e:
                # A journal-warmed fixpoint failed independent
                # validation: never cache or return it.  Discard the
                # warm result and re-run cold (no journal replay),
                # then certify the cold run too — a second failure is
                # a real analysis bug and fails the job.
                rejected = True
                self.certify_rejections += 1
                print(f"serve-worker: journal-warmed result for "
                      f"{src_digest[:12]} failed certification "
                      f"({e}); re-running cold", file=sys.stderr,
                      flush=True)
                # Donorless cache: the cold run still harvests, so its
                # journal *replaces* the tainted one in the store.
                cross_run = CrossRunCache(journal_store=self.journals,
                                          donor_bytes=b"")
                result = analyze_program(prog, cfg,
                                         parse_seconds=parse_s,
                                         cross_run=cross_run)
                certify_result(result, sources)
                certified = True
        if certified:
            self.certified_runs += 1

        payload = result_payload(result)
        harvested = (cross_run is not None
                     and cross_run.store_harvest(result))
        if harvested:
            self.journal_harvests += 1
        return {
            "ok": True, "job_id": job_id, "cached": False,
            "digest": result_digest(payload), "result": payload,
            "wall_s": time.perf_counter() - t0,
            "degraded": bool(result.degraded), "harvested": harvested,
            "certified": certified, "certify_rejected": rejected,
            "worker_stats": self.stats(),
        }

    def _should_certify(self, result, src_digest: str) -> bool:
        """Validate journal-warmed, non-degraded results: every one
        under "all", a deterministic 1-in-8 sample (by source digest)
        under "sampled"."""
        if self.certify_mode == "off":
            return False
        if result.degraded or result.cross_run_hits <= 0:
            return False
        if self.certify_mode == "all":
            return True
        return int(src_digest[:4], 16) % 8 == 0

    def stats(self) -> Dict:
        from ..domains.octagon import closure_memo_stats

        ch, csize, cev = closure_memo_stats()
        return {
            "pid": os.getpid(),
            "jobs_run": self.jobs_run,
            "frontend_cache": self.frontend.stats(),
            "journal_store": self.journals.stats(),
            "closure_memo": {"hits": ch, "entries": csize,
                             "evictions": cev},
            "certify": {"mode": self.certify_mode,
                        "certified": self.certified_runs,
                        "rejections": self.certify_rejections},
        }


class InProcessExecutor:
    """The ``--no-isolate-jobs`` fallback: the same :class:`JobExecutor`
    pipeline run inside the daemon process (no crash isolation — a hard
    worker death takes the daemon with it).  Presents the supervisor's
    interface so the server code has a single dispatch path."""

    def __init__(self, cache_dir: Optional[str] = None, base_config=None,
                 certify_mode: str = "off"):
        self._executor = JobExecutor(cache_dir, base_config, certify_mode)

    def ensure_started(self) -> None:
        pass

    def run_job(self, job, defaults: Dict,
                hard_timeout_s: Optional[float] = None) -> Dict:
        return self._executor.run(dict(job.to_wire(), defaults=defaults))

    def abort_current(self) -> None:
        pass  # nothing to kill without a subprocess

    def shutdown(self) -> None:
        pass

    def health(self) -> Dict:
        return {"mode": "in-process", "alive": True, "pid": os.getpid(),
                "restarts": 0, "spawns": 0, "last_exit": None}

    def cache_stats(self) -> Dict:
        return self._executor.stats()


# -- chaos fault-injection hooks (worker subprocess only) ---------------------


def _claim_marker(env_name: str) -> bool:
    """One-shot trigger: true iff the env var names a file this call
    unlinked (the same claim-by-unlink discipline as
    REPRO_FAULT_WORKER_CRASH, so concurrent workers fire it once)."""
    marker = os.environ.get(env_name)
    if not marker:
        return False
    try:
        os.unlink(marker)
    except OSError:
        return False
    return True


def _chaos_before_run(msg: Dict) -> None:
    if _claim_marker("REPRO_FAULT_SERVE_WORKER_CRASH"):
        print("ChaosWorkerKillError: injected worker kill (mid-job)",
              file=sys.stderr, flush=True)
        os.kill(os.getpid(), signal.SIGKILL)
    substr = os.environ.get("REPRO_FAULT_SERVE_POISON_SUBSTR")
    if substr and any(substr in text
                      for _, text in msg.get("sources", [])):
        print("ChaosPoisonError: injected poison crash",
              file=sys.stderr, flush=True)
        os.kill(os.getpid(), signal.SIGKILL)


def _chaos_send(out, reply: Dict) -> None:
    if _claim_marker("REPRO_FAULT_SERVE_TRUNCATE_FRAME"):
        data = json.dumps(reply, separators=(",", ":")).encode()
        frame = struct.pack(">I", len(data)) + data
        out.write(frame[:max(1, len(frame) // 2)])
        out.flush()
        print("ChaosTruncatedFrameError: injected half-written frame",
              file=sys.stderr, flush=True)
        os._exit(1)
    send_frame(out, reply)


# -- worker entry point -------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.serve.worker")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--certify", choices=("off", "sampled", "all"),
                        default="off",
                        help="validate journal-warmed results by "
                             "invariant certification before returning")
    args = parser.parse_args(argv)

    # Claim the frame channel before anything can print to it: frames go
    # to the original stdout, fd 1 becomes a clone of stderr.
    out = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    sys.stdout = sys.stderr
    inp = os.fdopen(os.dup(0), "rb")

    executor = JobExecutor(args.cache_dir, certify_mode=args.certify)
    while True:
        try:
            msg = recv_frame(inp)
        except ProtocolError as e:
            print(f"serve-worker: bad frame from daemon: {e}",
                  file=sys.stderr, flush=True)
            return 1
        if msg is None:
            return 0  # daemon closed our stdin: clean shutdown
        op = msg.get("op")
        if op == "exit":
            return 0
        if op == "ping":
            send_frame(out, {"ok": True, "pid": os.getpid()})
        elif op == "stats":
            send_frame(out, {"ok": True, "worker_stats": executor.stats()})
        elif op == "run":
            _chaos_before_run(msg)
            _chaos_send(out, executor.run(msg))
        else:
            send_frame(out, {"ok": False,
                             "error": f"unknown worker op: {op!r}"})


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
