"""Supervision of the out-of-process analysis worker.

The daemon never runs analysis in its own process: jobs are dispatched
to one ``python -m repro.serve.worker`` subprocess over length-prefixed
pipe frames.  This module is the parent half of that arrangement:

* :class:`WorkerHandle` — one live worker subprocess: framed
  request/response with a hard deadline, stderr capture (ring buffer,
  passed through to the daemon's stderr), death detection.  EOF, a
  half-written frame, and a hard-deadline overrun all surface as
  :class:`WorkerDied`.
* :class:`WorkerSupervisor` — the restart loop: spawns workers, paces
  respawns with seeded exponential backoff + jitter
  (:class:`repro.supervisor.restart.RestartPolicy`), verifies each
  spawn with a ping, and converts a death into a
  :class:`WorkerCrashed` carrying a *stable crash signature* (the
  fuzz-triage normalization over the worker's stderr tail, falling back
  to the exit status) so the server can quarantine jobs that kill
  workers reproducibly.
* :class:`PoisonRegistry` — the quarantine: request keys that crashed a
  worker twice under one signature are answered with a structured
  ``poisoned`` error instead of being re-run.  Persisted atomically
  under ``<cache>/quarantine/poisoned.json`` so a daemon restart does
  not forget which inputs are lethal.

The supervisor serializes pipe access with a lock, but
:meth:`WorkerSupervisor.abort_current` deliberately takes no lock: the
drain path must be able to kill a wedged worker *while* the dispatcher
thread is blocked inside ``run_job`` holding the lock — the kill makes
the blocked read fail with EOF, which unblocks the dispatcher.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from ..errors import ServeError
from ..ipc.frames import FdFrameReader, FrameTimeout
from .protocol import ProtocolError, send_frame
from .store import _atomic_write

__all__ = ["PoisonRegistry", "WorkerCrashed", "WorkerDied",
           "WorkerSupervisor"]


class WorkerDied(Exception):
    """The worker subprocess is unusable: EOF / truncated frame /
    hard-deadline overrun.  Internal to this module; the supervisor
    converts it into :class:`WorkerCrashed`."""

    def __init__(self, detail: str, timed_out: bool = False):
        super().__init__(detail)
        self.detail = detail
        self.timed_out = timed_out


class WorkerCrashed(Exception):
    """A job took the worker down.  ``signature`` is stable across
    repeat crashes of the same underlying fault (triage-normalized
    stderr, or the exit status), which is what the poison quarantine
    keys on."""

    def __init__(self, signature: str, detail: str, exit_status: str):
        super().__init__(f"worker crashed [{signature}]: {detail}")
        self.signature = signature
        self.detail = detail
        self.exit_status = exit_status


def _exit_status(returncode: Optional[int]) -> str:
    if returncode is None:
        return "unknown"
    if returncode < 0:
        try:
            name = signal.Signals(-returncode).name
        except ValueError:
            name = str(-returncode)
        return f"signal:{name}"
    return f"exit:{returncode}"


class WorkerHandle:
    """One spawned worker subprocess and its frame channel."""

    def __init__(self, cache_dir: Optional[str],
                 stderr_passthrough: bool = True,
                 certify_mode: str = "off"):
        argv = [sys.executable, "-m", "repro.serve.worker"]
        if cache_dir:
            argv += ["--cache-dir", cache_dir]
        if certify_mode != "off":
            argv += ["--certify", certify_mode]
        self.proc = subprocess.Popen(
            argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, env=self._env())
        self._reader = FdFrameReader(self.proc.stdout.fileno())
        self._stderr_tail: "deque[bytes]" = deque(maxlen=200)
        self._stderr_passthrough = stderr_passthrough
        self._stderr_thread = threading.Thread(
            target=self._pump_stderr, name="worker-stderr", daemon=True)
        self._stderr_thread.start()

    @staticmethod
    def _env() -> Dict[str, str]:
        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else src_dir + os.pathsep + existing)
        return env

    def _pump_stderr(self) -> None:
        try:
            for line in self.proc.stderr:
                self._stderr_tail.append(line)
                if self._stderr_passthrough:
                    sys.stderr.buffer.write(line)
                    sys.stderr.buffer.flush()
        except (OSError, ValueError):
            pass

    def stderr_tail(self) -> str:
        # Only called once the worker is dead (crash classification and
        # spawn-failure reporting).  The frame pipe can hit EOF before
        # the pump thread has drained the worker's final flushed lines
        # — e.g. its crash banner — so wait for the pump to reach EOF
        # first, or the crash signature misses the banner and degrades
        # to the exit-status fallback.
        self._stderr_thread.join(timeout=2.0)
        return b"".join(self._stderr_tail).decode("utf-8", "replace")

    def alive(self) -> bool:
        return self.proc.poll() is None

    # -- framed request/response ---------------------------------------------

    def request(self, message: Dict,
                timeout_s: Optional[float] = None) -> Dict:
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        try:
            send_frame(self.proc.stdin, message)
        except (OSError, ValueError, ProtocolError) as e:
            raise WorkerDied(f"request write failed: {e}")
        return self._recv_frame(deadline)

    def _recv_frame(self, deadline: Optional[float]) -> Dict:
        # The shared deadline-bounded reader (repro.ipc.frames) does the
        # byte work; every failure mode maps onto WorkerDied, which is
        # what the supervisor's crash classification keys on.
        try:
            msg = self._reader.recv_frame(deadline)
        except FrameTimeout:
            raise WorkerDied("worker exceeded the hard job deadline",
                             timed_out=True)
        except ProtocolError as e:
            raise WorkerDied(f"half-written or garbage frame from "
                             f"worker: {e}")
        if msg is None:
            raise WorkerDied("worker closed its pipe (EOF)")
        return msg

    # -- lifecycle ------------------------------------------------------------

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:
            pass

    def reap(self, timeout_s: float = 5.0) -> Optional[int]:
        try:
            return self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            return None

    def close(self, graceful: bool = True,
              grace_s: float = 2.0) -> Optional[int]:
        """Shut the worker down: ``exit`` frame, then escalate through
        terminate/kill.  Returns the exit code when reaped."""
        if graceful and self.alive():
            try:
                send_frame(self.proc.stdin, {"op": "exit"})
                self.proc.stdin.close()
            except (OSError, ValueError, ProtocolError):
                pass
            if self.reap(grace_s) is not None:
                return self.proc.returncode
        if self.alive():
            try:
                self.proc.terminate()
            except OSError:
                pass
            if self.reap(grace_s) is None:
                self.kill()
                self.reap(grace_s)
        for stream in (self.proc.stdin, self.proc.stdout):
            try:
                if stream:
                    stream.close()
            except OSError:
                pass
        return self.proc.returncode


class WorkerSupervisor:
    """Owns the (single) worker subprocess: spawn, ping-verify, restart
    with backoff, classify deaths into stable crash signatures."""

    #: Generous ceiling for spawn + interpreter/numpy import + ping.
    SPAWN_PING_TIMEOUT_S = 120.0

    def __init__(self, cache_dir: Optional[str] = None,
                 backoff_base_s: float = 0.05, backoff_cap_s: float = 5.0,
                 backoff_seed: Optional[int] = None,
                 stderr_passthrough: bool = True,
                 certify_mode: str = "off"):
        from ..supervisor.restart import RestartPolicy

        self.cache_dir = cache_dir
        self.certify_mode = certify_mode
        self.policy = RestartPolicy(base_s=backoff_base_s,
                                    cap_s=backoff_cap_s,
                                    seed=backoff_seed)
        self._stderr_passthrough = stderr_passthrough
        self._lock = threading.Lock()
        self._handle: Optional[WorkerHandle] = None
        self._next_spawn_at = 0.0
        self._closing = False
        self.spawns = 0
        self.restarts = 0
        self.crashes = 0
        self.last_exit: Optional[str] = None
        self.last_signature: Optional[str] = None
        self.worker_stats: Dict = {}
        self.incidents: List[str] = []

    # -- spawning -------------------------------------------------------------

    def ensure_started(self) -> None:
        """Eagerly spawn + ping the worker (best effort: a failure here
        is retried on the first job)."""
        try:
            with self._lock:
                self._ensure_worker()
        except (ServeError, WorkerDied):
            pass

    def _ensure_worker(self) -> WorkerHandle:
        if self._closing:
            raise ServeError("supervisor is shutting down")
        if self._handle is not None and self._handle.alive():
            return self._handle
        delay = self._next_spawn_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        handle = WorkerHandle(self.cache_dir, self._stderr_passthrough,
                              certify_mode=self.certify_mode)
        self.spawns += 1
        try:
            reply = handle.request({"op": "ping"},
                                   timeout_s=self.SPAWN_PING_TIMEOUT_S)
        except WorkerDied as e:
            status = _exit_status(handle.close(graceful=False))
            raise ServeError(
                f"analysis worker failed to start ({status}): {e.detail}; "
                f"stderr: {handle.stderr_tail()[-500:]!r}")
        if not reply.get("ok"):
            handle.close(graceful=False)
            raise ServeError(f"analysis worker ping failed: {reply!r}")
        self._handle = handle
        return handle

    # -- dispatch -------------------------------------------------------------

    def run_job(self, job, defaults: Dict,
                hard_timeout_s: Optional[float] = None) -> Dict:
        """Run one job on the worker; returns the worker's envelope.
        Raises :class:`WorkerCrashed` when the worker dies under the
        job (the caller decides about retry and quarantine)."""
        with self._lock:
            handle = self._ensure_worker()
            try:
                reply = handle.request(dict(job.to_wire(),
                                            defaults=defaults),
                                       timeout_s=hard_timeout_s)
            except WorkerDied as e:
                raise self._crashed(handle, e)
            self.policy.reset()
            stats = reply.pop("worker_stats", None)
            if stats:
                self.worker_stats = stats
            return reply

    def _crashed(self, handle: WorkerHandle, died: WorkerDied
                 ) -> WorkerCrashed:
        """Classify a worker death, pace the next respawn, and build
        the WorkerCrashed for the caller.  Called with the lock held."""
        if died.timed_out:
            handle.kill()
        stderr = handle.stderr_tail()
        status = _exit_status(handle.close(graceful=False))
        if died.timed_out:
            signature = "worker-timeout|hard-deadline|"
        else:
            from ..fuzz.triage import crash_signature

            signature = crash_signature(stderr)
            if signature.startswith("UnknownError|?|"):
                signature = f"worker-exit|{status}|"
        self._handle = None
        self.crashes += 1
        self.restarts += 1
        self.last_exit = status
        self.last_signature = signature
        self._next_spawn_at = time.monotonic() + self.policy.next_delay()
        incident = (f"worker-crash: {status} [{signature}] — {died.detail}")
        self.incidents.append(incident)
        print(f"astree-repro serve: {incident}", file=sys.stderr,
              flush=True)
        return WorkerCrashed(signature, died.detail, status)

    # -- control --------------------------------------------------------------

    def abort_current(self) -> None:
        """Kill the worker out from under a blocked dispatch (drain
        escalation).  Lock-free on purpose — see the module docstring."""
        handle = self._handle
        if handle is not None:
            handle.kill()

    def request_stats(self) -> Optional[Dict]:
        """Live worker cache stats, if the worker is idle (non-blocking
        try-lock: a stats op must never queue behind a long job)."""
        if not self._lock.acquire(blocking=False):
            return None
        try:
            if self._handle is None or not self._handle.alive():
                return None
            try:
                reply = self._handle.request({"op": "stats"}, timeout_s=10.0)
            except WorkerDied:
                return None
            stats = reply.get("worker_stats")
            if stats:
                self.worker_stats = stats
            return stats
        finally:
            self._lock.release()

    def shutdown(self) -> None:
        self._closing = True
        handle = self._handle
        self._handle = None
        if handle is not None:
            handle.close(graceful=True)

    def health(self) -> Dict:
        handle = self._handle
        return {
            "mode": "subprocess",
            "alive": bool(handle is not None and handle.alive()),
            "pid": handle.proc.pid if handle is not None else None,
            "spawns": self.spawns,
            "restarts": self.restarts,
            "crashes": self.crashes,
            "last_exit": self.last_exit,
            "last_crash_signature": self.last_signature,
        }

    def cache_stats(self) -> Dict:
        return self.request_stats() or self.worker_stats or {}


class PoisonRegistry:
    """Quarantine for jobs that reproducibly kill workers.

    Crash counts are keyed by (request key, crash signature); a key
    whose signature reaches two crashes is *poisoned* and answered with
    a structured error without touching a worker.  A successful
    ``bypass_cache`` run of the key clears it (the operator's way to
    re-admit a fixed input).  State persists as one atomic JSON file so
    a poisoned job cannot crash-loop a freshly restarted daemon."""

    def __init__(self, cache_dir: Optional[str] = None,
                 poison_threshold: int = 2):
        self.poison_threshold = poison_threshold
        self._path = (os.path.join(cache_dir, "quarantine", "poisoned.json")
                      if cache_dir else None)
        self._lock = threading.Lock()
        self._crashes: Dict[str, Dict[str, int]] = {}
        self._poisoned: Dict[str, Dict] = {}
        self._load()

    def _load(self) -> None:
        if self._path is None or not os.path.exists(self._path):
            return
        try:
            import json

            with open(self._path, "rb") as f:
                data = json.loads(f.read().decode())
            self._crashes = {str(k): {str(s): int(n)
                                      for s, n in dict(v).items()}
                             for k, v in dict(
                                 data.get("crashes", {})).items()}
            self._poisoned = {str(k): dict(v) for k, v in dict(
                data.get("poisoned", {})).items()}
        except (OSError, ValueError, TypeError, AttributeError):
            self._crashes, self._poisoned = {}, {}  # corrupt: start clean

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if self._path is None:
            return
        import json

        data = {"crashes": self._crashes, "poisoned": self._poisoned}
        try:
            _atomic_write(self._path,
                          (json.dumps(data, indent=1, sort_keys=True)
                           + "\n").encode())
        except OSError:
            pass  # quarantine persistence is best-effort

    def check(self, request_key: str) -> Optional[Dict]:
        with self._lock:
            entry = self._poisoned.get(request_key)
            return dict(entry) if entry else None

    def record_crash(self, request_key: str, signature: str) -> int:
        """Count one crash; returns the new count for this (key,
        signature) pair."""
        with self._lock:
            per_key = self._crashes.setdefault(request_key, {})
            per_key[signature] = per_key.get(signature, 0) + 1
            count = per_key[signature]
            self._flush_locked()
            return count

    def mark_poisoned(self, request_key: str, signature: str) -> Dict:
        with self._lock:
            count = self._crashes.get(request_key, {}).get(signature, 0)
            entry = {"signature": signature, "crashes": count}
            self._poisoned[request_key] = entry
            self._flush_locked()
            return dict(entry)

    def clear(self, request_key: str) -> None:
        with self._lock:
            self._crashes.pop(request_key, None)
            self._poisoned.pop(request_key, None)
            self._flush_locked()

    def size(self) -> int:
        with self._lock:
            return len(self._poisoned)

    def stats(self) -> Dict:
        with self._lock:
            return {
                "poisoned": len(self._poisoned),
                "keys_with_crashes": len(self._crashes),
                "signatures": sorted(
                    {e["signature"] for e in self._poisoned.values()}),
            }
