"""Content-addressed keys for the cross-run caches.

Everything the serving layer stores is keyed by *content*, never by
process-local identity: statement ids come from a process-global
counter (two compilations of the same source in one daemon produce
different absolute sids), so every fingerprint here maps sids to
deterministic per-program ordinals first.

Three layers of keys, from coarse to fine:

* :func:`request_key` — source digest + entry + configuration
  fingerprint.  Indexes the exact-result store: two requests with equal
  keys have bit-identical results (the analyzer is deterministic).
* :func:`compat_fingerprint` — configuration fingerprint + the full
  cell-table/pack/filter-site layout.  Two runs with equal compat
  fingerprints agree on what every cell id, pack id and site id
  *means*, so abstract states may be exchanged between them.  This
  indexes the cross-run fixpoint journals: near-duplicate versions of
  one program (same declarations, edited statement constants) share a
  compat fingerprint.
* :func:`stmt_record_key` — one statement's transfer-function identity:
  stable ordinal, pretty-printed content including the bodies of every
  transitively called function, by-reference binding stack, and the
  resolved footprint slice.  A recorded (pre, post) pair is only ever
  replayed for a statement with an equal key, which pins the transfer
  semantics; the incremental engine's agreement check then validates
  the pre-state, making the splice exact (see
  repro.iterator.incremental).

The configuration fingerprint covers every knob that can change the
verdict (domains, thresholds, unrolling, ranges, partitioning) and
deliberately excludes the sharing/performance knobs (incremental,
memo sizes, jobs) and the resource budgets: results are bit-identical
across the former, and budgets only decide whether a run *finishes* at
full precision — degraded runs are never cached (see repro.serve.cache),
so budget settings must not fragment the key space.  The supervisor's
degradation ladder mutates precision fields in place, hence a degraded
effective configuration always fingerprints differently from the
requested one.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["compat_fingerprint", "config_fingerprint", "function_hashes",
           "request_key", "result_digest", "result_payload",
           "source_digest", "stable_ordinals", "stmt_content_hash",
           "stmt_record_key"]


def _sha(*chunks: str) -> str:
    h = hashlib.sha256()
    for c in chunks:
        h.update(c.encode())
        h.update(b"\x00")
    return h.hexdigest()


def source_digest(sources: Sequence[Tuple[str, str]]) -> str:
    """Digest of a list of (filename, text) translation units."""
    h = hashlib.sha256()
    for name, text in sources:
        h.update(name.encode())
        h.update(b"\x00")
        h.update(text.encode())
        h.update(b"\x00")
    return h.hexdigest()


# Performance/robustness knobs that cannot change a (non-degraded)
# verdict: excluded from the configuration fingerprint on purpose.
_NON_SEMANTIC_FIELDS = frozenset({
    "incremental", "lattice_memo_size", "value_intern_size",
    "closure_memo_size", "vectorize", "vectorize_min_cells",
    "jobs", "parallel_min_stmts", "dispatch_retries",
    "retry_backoff_s", "max_pool_rebuilds", "dispatch", "workers",
    "worker_connect_timeout_s", "wall_deadline_s",
    "rss_limit_kib", "stmt_timeout_s", "watchdog_interval_s",
    "checkpoint_path", "checkpoint_every", "resume_path",
    "checkpoint_halt_after", "certify",
})


def config_fingerprint(cfg) -> str:
    """Hash of every analysis-relevant configuration field (threshold
    *values* included — unlike the coarser checkpoint fingerprint, this
    key crosses runs and programs, so it cannot rely on a fixed
    in-process thresholds object)."""
    import dataclasses

    items: List[Tuple[str, str]] = []
    for f in dataclasses.fields(cfg):
        if f.name in _NON_SEMANTIC_FIELDS:
            continue
        v = getattr(cfg, f.name)
        if f.name == "thresholds":
            v = None if v is None else tuple(v.values)
        elif isinstance(v, dict):
            v = tuple(sorted(v.items()))
        elif isinstance(v, (set, frozenset)):
            v = tuple(sorted(v))
        items.append((f.name, repr(v)))
    return _sha(repr(sorted(items)))


def stable_ordinals(prog) -> Dict[int, int]:
    """sid -> deterministic per-program ordinal (depth-first over
    functions in sorted name order).  Stable across compilations of the
    same source in any process, unlike the process-global sid counter."""
    from ..frontend import ir as I

    out: Dict[int, int] = {}
    n = 0
    for name in sorted(prog.functions):
        fn = prog.functions[name]
        if not fn.body:
            continue
        for s in I.iter_stmts(fn.body):
            out[s.sid] = n
            n += 1
    return out


def function_hashes(prog) -> Dict[str, str]:
    """name -> content hash of the function body *including every
    transitively called function* (so a statement's content hash pins
    the semantics of calls it contains).  Cycles contribute by name
    only — recursive programs get coarser, still sound, keys."""
    from ..frontend import ir as I
    from ..frontend.pretty import format_function

    callees: Dict[str, List[str]] = {}
    for name, fn in prog.functions.items():
        if not fn.body:
            callees[name] = []
            continue
        callees[name] = sorted({
            s.func for s in I.iter_stmts(fn.body)
            if isinstance(s, I.SCall) and s.func in prog.functions})

    memo: Dict[str, str] = {}
    visiting: set = set()

    def h(name: str) -> str:
        cached = memo.get(name)
        if cached is not None:
            return cached
        if name in visiting:
            return _sha("cycle", name)
        visiting.add(name)
        fn = prog.functions.get(name)
        body = format_function(fn) if fn is not None and fn.body else name
        out = _sha(body, *[h(c) for c in callees.get(name, [])])
        visiting.discard(name)
        memo[name] = out
        return out

    for name in prog.functions:
        h(name)
    return memo


def stmt_content_hash(stmt, fn_hashes: Dict[str, str]) -> str:
    """Content hash of one statement subtree plus the transitive bodies
    of every function it may call."""
    from ..frontend import ir as I
    from ..frontend.pretty import format_stmts

    text = "\n".join(format_stmts([stmt]))
    calls = sorted({
        s.func for s in I.iter_stmts([stmt])
        if isinstance(s, I.SCall) and s.func in fn_hashes})
    return _sha(text, *[fn_hashes[c] for c in calls])


def stmt_record_key(ordinal: int, content_hash: str, frames_repr,
                    meta, site_consts: Tuple = ()) -> str:
    """The journal key of one statement's (pre, post) records: pins
    position, content (callees included), by-reference bindings, and
    the resolved footprint slice (cell/pack/site ids).

    ``site_consts`` carries the (a, b) filter coefficients of every
    site in the footprint: ellipsoid *reduction* on a read uses them
    without the statement's text mentioning them, so the content hash
    alone would not notice a coefficient edit."""
    return _sha(repr((ordinal, content_hash, frames_repr, meta.cells,
                      meta.write_cells, meta.packs, meta.write_packs,
                      meta.bpacks, meta.write_bpacks, meta.sites,
                      site_consts, meta.clock_dep)))


def compat_fingerprint(ctx) -> str:
    """Hash of everything cross-run abstract states are keyed against:
    the analysis-relevant configuration and the complete cell-table /
    octagon-pack / boolean-pack / filter-site layout.  Runs with equal
    compat fingerprints may exchange (pre, post) state records."""
    ordinals = stable_ordinals(ctx.prog)
    cells = [(c.cid, c.name, repr(c.ctype), c.var_uid, c.volatile,
              c.summarized) for c in ctx.table.all_cells()]
    opacks = [(p.pack_id, p.cids) for p in ctx.oct_packs.packs]
    bpacks = [(p.pack_id, p.bool_cids, p.numeric_cids)
              for p in ctx.bool_packs.packs]
    # Layout only, deliberately NOT the filter coefficients a/b: those
    # are transfer-function constants, and every statement whose
    # semantics depend on them contains them in its (transitive)
    # content hash — stmt_record_key already refuses such donors.
    # Keeping them out lets coefficient-tuning edits (the common
    # near-duplicate case) stay journal-compatible.
    sites = [(s.site_id, s.x_cid, s.y_cid, s.t_cid,
              ordinals.get(s.rotate_sid, -1), ordinals.get(s.shift_sid, -1),
              ordinals.get(s.commit_sid, -1))
             for s in ctx.filter_sites.sites]
    return _sha(config_fingerprint(ctx.config), repr(cells), repr(opacks),
                repr(bpacks), repr(sites))


def request_key(src_digest: str, entry: str, cfg) -> str:
    """The exact-result cache key of one analysis request."""
    return _sha(src_digest, entry, config_fingerprint(cfg))


# -- result payloads and the determinism digest ------------------------------


def result_payload(result) -> Dict[str, object]:
    """The JSON-safe result of one analysis request, as stored in the
    exact-result cache and returned to clients.

    Alarms are reported without their per-compile statement ids (sids
    are process-local; everything else about an alarm is stable), so
    the payload — and therefore the digest below — is comparable across
    runs and daemon restarts."""
    import dataclasses

    stats = result.invariant_stats()
    payload: Dict[str, object] = {
        "alarms": [
            {"kind": a.kind, "file": a.loc.filename, "line": a.loc.line,
             "col": a.loc.col, "message": a.message}
            for a in result.alarms
        ],
        "alarm_count": result.alarm_count,
        "exit_code": result.exit_code,
        "degraded": result.degraded,
        "degradation_steps": list(result.degradation_steps),
        "widening_iterations": result.widening_iterations,
        "invariant_stats": dataclasses.asdict(stats),
        # Performance counters: informative, excluded from the digest
        # (a warm run legitimately executes fewer statements).
        "analysis_time_s": result.analysis_time,
        "phase_times_s": dict(result.phase_times),
        "stmts_executed": result.stmts_executed,
        "stmts_skipped": result.stmts_skipped,
        "cross_run_seeded": result.cross_run_seeded,
        "cross_run_hits": result.cross_run_hits,
        "cross_run_spliced": result.cross_run_spliced,
        "octagon_packs": result.octagon_pack_count,
        "bool_packs": result.bool_pack_count,
        "filter_sites": result.filter_site_count,
    }
    if result.loop_invariants:
        payload["invariant_dump"] = result.dump_invariant_text()
    return payload


# The semantic slice of a result payload: what the determinism contract
# promises to be bit-identical between a cache-served and a cold run.
_DIGEST_FIELDS = ("alarms", "alarm_count", "exit_code", "degraded",
                  "degradation_steps", "widening_iterations",
                  "invariant_stats", "invariant_dump")


def result_digest(payload: Dict[str, object]) -> str:
    """Canonical digest of the semantic result fields (alarms, exit
    code, invariant statistics, widening iterations — never timings or
    execution counters)."""
    sem = {k: payload[k] for k in _DIGEST_FIELDS if k in payload}
    return hashlib.sha256(
        json.dumps(sem, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
