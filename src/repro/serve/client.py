"""Client side of the analysis daemon: ``astree-repro client``.

:class:`ServeClient` is a thin synchronous wrapper over the protocol —
connect, send one JSON line, read one JSON line.  The submit-and-wait
path is the normal workflow; ``edit_loop`` is the built-in benchmark
driver (``--edit-loop N``): it analyzes the given source cold, then N
perturbed near-duplicates (repro.serve.workload), reporting per-request
wall time, cache disposition and the digest-equality check against a
bypass-cache reference run.
"""

from __future__ import annotations

import socket
import time
from typing import Dict, List, Optional, Tuple

from .protocol import ProtocolError, recv_message, send_message

__all__ = ["ServeClient"]


class ServeClient:
    """One connection to a running daemon."""

    def __init__(self, socket_path: str, timeout: Optional[float] = None):
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(socket_path)
        self._reader = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, message: Dict) -> Dict:
        send_message(self._sock, message)
        reply = recv_message(self._reader)
        if reply is None:
            raise ProtocolError("daemon closed the connection")
        return reply

    # -- ops -----------------------------------------------------------------

    def ping(self) -> Dict:
        return self.request({"op": "ping"})

    def stats(self) -> Dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict:
        return self.request({"op": "shutdown"})

    def submit(self, sources: List[Tuple[str, str]], entry: str = "main",
               config: Optional[Dict] = None, wait: bool = True,
               bypass_cache: bool = False) -> Dict:
        return self.request({
            "op": "submit", "sources": [list(p) for p in sources],
            "entry": entry, "config": config or {}, "wait": wait,
            "bypass_cache": bypass_cache,
        })

    # -- the --edit-loop benchmark driver ------------------------------------

    def edit_loop(self, filename: str, source: str, rounds: int,
                  entry: str = "main", config: Optional[Dict] = None,
                  verify: bool = True) -> Dict:
        """Submit ``source`` then ``rounds`` perturbed near-duplicates;
        per round optionally submit a ``bypass_cache`` reference of the
        same variant and check digest equality.  Returns a summary dict
        (per-round rows + aggregate speedup)."""
        from .workload import make_variant

        rows: List[Dict] = []
        mismatches = 0
        for i in range(rounds + 1):
            variant = make_variant(source, i)  # i=0: the base source
            t0 = time.perf_counter()
            reply = self.submit([(filename, variant)], entry=entry,
                                config=config)
            wall = time.perf_counter() - t0
            if not reply.get("ok"):
                raise RuntimeError(
                    f"edit-loop round {i} failed: {reply.get('error')}")
            row = {
                "round": i,
                "cached": reply["cached"],
                "digest": reply["digest"],
                "client_wall_s": wall,
                "server_wall_s": reply["wall_s"],
                "cross_run_hits":
                    reply["result"].get("cross_run_hits", 0),
            }
            if verify:
                ref = self.submit([(filename, variant)], entry=entry,
                                  config=config, bypass_cache=True)
                if not ref.get("ok"):
                    raise RuntimeError(
                        f"edit-loop reference {i} failed: "
                        f"{ref.get('error')}")
                row["reference_digest"] = ref["digest"]
                row["bit_identical"] = ref["digest"] == reply["digest"]
                if not row["bit_identical"]:
                    mismatches += 1
            rows.append(row)
        warm = [r["server_wall_s"] for r in rows[1:]
                if not r["cached"]]
        cold = rows[0]["server_wall_s"]
        return {
            "rounds": rows,
            "mismatches": mismatches,
            "cold_wall_s": cold,
            "warm_avg_wall_s": sum(warm) / len(warm) if warm else 0.0,
        }
