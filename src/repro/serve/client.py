"""Client side of the analysis daemon: ``astree-repro client``.

:class:`ServeClient` is a thin synchronous wrapper over the protocol —
connect, send one JSON line, read one JSON line.  Transport failures
(connect refused, timeout, the daemon dying mid-response with an EOF or
ECONNRESET) surface as the typed, always-retryable
:class:`~repro.errors.ServeConnectionError`, never as raw socket
errors: the analyzer is deterministic and results are cached by
content, so resubmitting the same request is always safe.

:meth:`ServeClient.submit` can do that resubmitting itself: with
``retries > 0`` it reconnects and retries on connection errors and on
retryable daemon refusals (queue full, draining), honoring the
server's ``retry_after_s`` hint with exponential backoff on top.

``edit_loop`` is the built-in benchmark driver (``--edit-loop N``): it
analyzes the given source cold, then N perturbed near-duplicates
(repro.serve.workload), reporting per-request wall time, cache
disposition and the digest-equality check against a bypass-cache
reference run.
"""

from __future__ import annotations

import socket
import time
from typing import Dict, List, Optional, Tuple

from ..errors import ServeConnectionError
from .protocol import ProtocolError, recv_message, send_message

__all__ = ["ServeClient"]


class ServeClient:
    """One connection to a running daemon (reconnects on retry)."""

    def __init__(self, socket_path: str, timeout: Optional[float] = None):
        self.socket_path = socket_path
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._connect()

    def _connect(self) -> None:
        self.close()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except socket.timeout:
            sock.close()
            raise ServeConnectionError(
                f"timed out connecting to daemon at {self.socket_path}")
        except OSError as e:
            sock.close()
            raise ServeConnectionError(
                f"cannot connect to daemon at {self.socket_path}: {e}")
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self) -> None:
        try:
            if self._reader is not None:
                self._reader.close()
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass
        self._sock = None
        self._reader = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, message: Dict) -> Dict:
        """One request/response round trip.  Raises
        :class:`ServeConnectionError` if the daemon dies mid-exchange
        (EOF, ECONNRESET, timeout) — the connection is closed and the
        next call through a retry path reconnects."""
        if self._sock is None:
            self._connect()
        try:
            send_message(self._sock, message)
            reply = recv_message(self._reader)
        except socket.timeout:
            self.close()
            raise ServeConnectionError(
                f"request timed out after {self.timeout}s "
                f"(op={message.get('op')!r})")
        except OSError as e:
            self.close()
            raise ServeConnectionError(
                f"connection to daemon died mid-request: {e}")
        except ProtocolError as e:
            self.close()
            raise ServeConnectionError(
                f"garbled response from daemon: {e}")
        if reply is None:
            self.close()
            raise ServeConnectionError(
                "daemon closed the connection mid-response")
        return reply

    # -- ops -----------------------------------------------------------------

    def ping(self) -> Dict:
        return self.request({"op": "ping"})

    def stats(self) -> Dict:
        return self.request({"op": "stats"})

    def health(self) -> Dict:
        return self.request({"op": "health"})

    def shutdown(self) -> Dict:
        return self.request({"op": "shutdown"})

    def submit(self, sources: List[Tuple[str, str]], entry: str = "main",
               config: Optional[Dict] = None, wait: bool = True,
               bypass_cache: bool = False, retries: int = 0,
               backoff_s: float = 0.25) -> Dict:
        """Submit one job.  With ``retries > 0``, connection deaths and
        retryable daemon refusals (queue full, draining) are retried
        after the server's ``retry_after_s`` hint (or exponential
        backoff), reconnecting as needed.  Structured job failures
        (``poisoned``, analysis errors) are returned as-is — they are
        answers, not transport faults."""
        message = {
            "op": "submit", "sources": [list(p) for p in sources],
            "entry": entry, "config": config or {}, "wait": wait,
            "bypass_cache": bypass_cache,
        }
        attempt = 0
        while True:
            try:
                reply = self.request(message)
            except ServeConnectionError:
                if attempt >= retries:
                    raise
                time.sleep(backoff_s * (2 ** attempt))
                attempt += 1
                continue
            if (not reply.get("ok") and reply.get("retryable")
                    and attempt < retries):
                delay = reply.get("retry_after_s")
                time.sleep(float(delay) if delay
                           else backoff_s * (2 ** attempt))
                attempt += 1
                continue
            return reply

    # -- the --edit-loop benchmark driver ------------------------------------

    def edit_loop(self, filename: str, source: str, rounds: int,
                  entry: str = "main", config: Optional[Dict] = None,
                  verify: bool = True) -> Dict:
        """Submit ``source`` then ``rounds`` perturbed near-duplicates;
        per round optionally submit a ``bypass_cache`` reference of the
        same variant and check digest equality.  Returns a summary dict
        (per-round rows + aggregate speedup)."""
        from .workload import make_variant

        rows: List[Dict] = []
        mismatches = 0
        for i in range(rounds + 1):
            variant = make_variant(source, i)  # i=0: the base source
            t0 = time.perf_counter()
            reply = self.submit([(filename, variant)], entry=entry,
                                config=config)
            wall = time.perf_counter() - t0
            if not reply.get("ok"):
                raise RuntimeError(
                    f"edit-loop round {i} failed: {reply.get('error')}")
            row = {
                "round": i,
                "cached": reply["cached"],
                "digest": reply["digest"],
                "client_wall_s": wall,
                "server_wall_s": reply["wall_s"],
                "cross_run_hits":
                    reply["result"].get("cross_run_hits", 0),
            }
            if verify:
                ref = self.submit([(filename, variant)], entry=entry,
                                  config=config, bypass_cache=True)
                if not ref.get("ok"):
                    raise RuntimeError(
                        f"edit-loop reference {i} failed: "
                        f"{ref.get('error')}")
                row["reference_digest"] = ref["digest"]
                row["bit_identical"] = ref["digest"] == reply["digest"]
                if not row["bit_identical"]:
                    mismatches += 1
            rows.append(row)
        warm = [r["server_wall_s"] for r in rows[1:]
                if not r["cached"]]
        cold = rows[0]["server_wall_s"]
        return {
            "rounds": rows,
            "mismatches": mismatches,
            "cold_wall_s": cold,
            "warm_avg_wall_s": sum(warm) / len(warm) if warm else 0.0,
        }
