"""Fault-tolerant analysis supervision.

The paper's promise is that the analyzer *always terminates with a sound
verdict* on hour-scale runs; Monniaux's parallelization paper adds that a
distributed analysis must tolerate worker failure without losing
soundness.  This package supplies the machinery:

* :mod:`.budget` — per-run resource budgets (wall-clock deadline,
  peak-RSS ceiling sampled by a watchdog thread, per-statement soft
  timeout);
* :mod:`.degradation` — the soundness-preserving degradation ladder that
  trades precision for termination when a budget trips;
* :mod:`.incidents` — the structured incident log attached to every
  :class:`~repro.analysis.AnalysisResult`;
* :mod:`.checkpoint` — iteration-boundary checkpoints and bit-identical
  resume;
* :mod:`.restart` — seeded exponential-backoff-plus-jitter pacing for
  restarting crashed workers (used by the serving layer's out-of-process
  worker supervision);
* :mod:`.supervisor` — the :class:`Supervisor` façade the iterator and
  the parallel engine report into.
"""

from .budget import peak_rss_kib
from .checkpoint import Checkpoint, load_checkpoint, write_checkpoint
from .degradation import DEGRADATION_RUNGS, DegradationLadder
from .incidents import Incident, IncidentLog
from .restart import RestartPolicy
from .supervisor import Supervisor

__all__ = [
    "Checkpoint",
    "DEGRADATION_RUNGS",
    "DegradationLadder",
    "Incident",
    "IncidentLog",
    "RestartPolicy",
    "Supervisor",
    "load_checkpoint",
    "peak_rss_kib",
    "write_checkpoint",
]
