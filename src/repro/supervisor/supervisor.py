"""The analysis supervisor.

One :class:`Supervisor` instance wraps one analysis run.  It owns

* the run's *mutable copy* of the configuration (degradation rungs
  mutate it in place; the caller's config is never touched),
* the resource budgets and their watchdog thread,
* the degradation ladder,
* the incident log (shared with the parallel engine), and
* the checkpoint/resume machinery.

The iterator polls it at two kinds of boundaries:

* ``poll_stmt`` at every statement — consumes budget trips raised by the
  watchdog and samples the per-statement soft timeout;
* ``on_fixpoint_iteration`` at every widening-iteration boundary —
  consumes trips and, for *outermost* fixpoints, writes checkpoints.

Budget handling is strictly cooperative: the watchdog thread only sets a
flag, and all config mutation happens on the analysis thread inside the
poll calls, so the iterator never observes a configuration change within
a single statement's transfer function.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Tuple

from ..config import AnalyzerConfig
from ..errors import CheckpointError, SupervisorHalt
from .budget import BudgetWatchdog, ResourceBudget
from .checkpoint import (Checkpoint, context_fingerprint, load_checkpoint,
                         write_checkpoint)
from .degradation import DegradationLadder
from .incidents import IncidentLog

__all__ = ["Supervisor"]

# Environment knob: simulate a kill after N checkpoints have been
# written (used by CI fault-injection; config.checkpoint_halt_after
# takes precedence when set).
HALT_ENV = "REPRO_FAULT_HALT_AFTER_CHECKPOINTS"

# Cap on recorded stmt-timeout incidents: a tiny limit on a large
# program would otherwise flood the log with one incident per statement.
MAX_STMT_TIMEOUT_INCIDENTS = 20


class Supervisor:
    """Per-run fault-tolerance coordinator (see module docstring)."""

    def __init__(self, config: AnalyzerConfig,
                 incidents: Optional[IncidentLog] = None) -> None:
        self.config = config
        self.incidents = incidents if incidents is not None else IncidentLog()
        self.budget = ResourceBudget(
            wall_deadline_s=config.wall_deadline_s,
            rss_limit_kib=config.rss_limit_kib,
            stmt_timeout_s=config.stmt_timeout_s,
        )
        self.ladder = DegradationLadder(config)
        self.degraded = False
        self.resumed = False
        # Set by analyze_program when jobs > 1 (shut down on first trip
        # to stop paying worker memory/dispatch costs).
        self.engine = None
        # Set by attach_context: needed to flush configuration-derived
        # caches when a degradation rung mutates the config mid-run.
        self.ctx = None
        self._t0 = time.perf_counter()
        self._watchdog = BudgetWatchdog(self.budget, self._t0,
                                        self._trip,
                                        config.watchdog_interval_s)
        self._tripped: Optional[str] = None  # set by watchdog thread
        self._exhausted_reported = False
        self._stmt_timeout_incidents = 0
        self._last_stmt: Optional[Tuple[float, int]] = None
        self._polls = 0
        # Checkpointing.
        self._fingerprint: Optional[str] = None
        self._checkpoints_written = 0
        halt = config.checkpoint_halt_after
        if halt is None and os.environ.get(HALT_ENV):
            try:
                halt = int(os.environ[HALT_ENV])
            except ValueError:
                halt = None
        self._halt_after = halt
        # Resume.
        self._resume_cp: Optional[Checkpoint] = None
        self._resume_pending = False

    # -- lifecycle -------------------------------------------------------------

    def attach_context(self, ctx) -> None:
        """Bind the built AnalysisContext: compute the fingerprint and,
        when resuming, load + validate the checkpoint and re-apply its
        recorded degradation rungs."""
        self.ctx = ctx
        self._fingerprint = context_fingerprint(ctx)
        path = self.config.resume_path
        if not path:
            return
        from ..iterator.state import set_active_context

        set_active_context(ctx)
        cp = load_checkpoint(path, self._fingerprint)
        self._resume_cp = cp
        self._resume_pending = True
        self.resumed = True
        self.incidents.restore(cp.incidents, cp.incidents_dropped)
        self.degraded = cp.degraded
        if cp.degradation_applied:
            self.ladder.apply_named(cp.degradation_applied)
        self.incidents.record(
            "resume", action="restored",
            detail=(f"checkpoint {path}: fixpoint ordinal {cp.ordinal}, "
                    f"loop {cp.loop_id}, iteration {cp.next_iteration}"))

    def start(self) -> None:
        self._watchdog.start()

    def stop(self) -> None:
        self._watchdog.stop()

    # -- budget trips ----------------------------------------------------------

    def _trip(self, reason: str) -> None:
        """Watchdog-thread callback: flag only, handled at the next poll."""
        if self._tripped is None:
            self._tripped = reason

    def _consume_trip(self) -> None:
        reason = self._tripped
        if reason is None:
            return
        self._tripped = None
        self._degrade(reason, self._budget_detail(reason))

    def _check_budgets_inline(self, sample_rss: bool) -> None:
        """Synchronous budget check on the analysis thread.  The watchdog
        alone is not enough: a CPU-bound analysis can hold the GIL for
        whole scheduler quanta, so short overruns would be noticed only
        after the run finished.  The deadline compare is free and runs on
        every poll; the RSS syscall is sampled."""
        if self._tripped is not None:
            return
        b = self.budget
        if (b.wall_deadline_s is not None
                and time.perf_counter() - self._t0 > b.wall_deadline_s):
            self._tripped = "deadline"
            return
        if b.rss_limit_kib is not None and sample_rss:
            from .budget import peak_rss_kib

            if peak_rss_kib() > b.rss_limit_kib:
                self._tripped = "rss"

    def _budget_detail(self, reason: str) -> str:
        if reason == "deadline":
            return (f"wall clock {time.perf_counter() - self._t0:.2f}s "
                    f"exceeded deadline {self.config.wall_deadline_s}s")
        if reason == "rss":
            from .budget import peak_rss_kib

            return (f"peak RSS {peak_rss_kib()} KiB exceeded ceiling "
                    f"{self.config.rss_limit_kib} KiB")
        return ""

    def _degrade(self, reason: str, detail: str) -> None:
        if self.engine is not None:
            # Free worker processes first; already-merged parallel
            # results were computed under the stricter config (sound).
            engine, self.engine = self.engine, None
            engine.shutdown(f"budget trip ({reason})")
        step = self.ladder.step()
        if step is None:
            if not self._exhausted_reported:
                self._exhausted_reported = True
                self.incidents.record(
                    reason, action="exhausted-ladder",
                    detail="all degradation rungs already applied; "
                           "finishing under the coarsest sound config")
            return
        name, rung_detail = step
        self.degraded = True
        if self.ctx is not None:
            # The rung mutated the config in place: every cache whose
            # keys or results depend on it (lattice memo, incremental
            # executors' footprints and records) is now stale.
            self.ctx.invalidate_derived_caches()
        self.incidents.record(reason, action=f"degrade:{name}",
                              detail=f"{detail}; {rung_detail}")

    # -- iterator hooks --------------------------------------------------------

    def poll_stmt(self, it, s) -> None:
        """Called by the iterator at every statement entry."""
        self._polls += 1
        self._check_budgets_inline(sample_rss=self._polls % 32 == 0)
        if self._tripped is not None:
            self._consume_trip()
        lim = self.budget.stmt_timeout_s
        if lim is None:
            return
        now = time.perf_counter()
        prev = self._last_stmt
        self._last_stmt = (now, s.sid)
        if prev is None:
            return
        prev_t, prev_sid = prev
        if now - prev_t > lim:
            if self._stmt_timeout_incidents < MAX_STMT_TIMEOUT_INCIDENTS:
                self._stmt_timeout_incidents += 1
                self._degrade(
                    "stmt-timeout",
                    f"statement {prev_sid} spent {now - prev_t:.3f}s "
                    f"(soft limit {lim}s)")

    def on_fixpoint_iteration(self, it, loop_id: int, ordinal: int, k: int,
                              inv, prev_unstable, fairness_left: int) -> None:
        """Called at the top of every widening iteration (any depth)."""
        self._check_budgets_inline(sample_rss=True)
        if self._tripped is not None:
            self._consume_trip()
        if it._fixpoint_depth != 1 or not self.config.checkpoint_path:
            return
        every = max(1, self.config.checkpoint_every)
        if k % every != 0:
            return
        self._write_checkpoint(it, loop_id, ordinal, k, inv, prev_unstable,
                               fairness_left)

    def _write_checkpoint(self, it, loop_id, ordinal, k, inv, prev_unstable,
                          fairness_left) -> None:
        assert self._fingerprint is not None
        cp = Checkpoint(
            fingerprint=self._fingerprint,
            ordinal=ordinal,
            loop_id=loop_id,
            next_iteration=k,
            inv=inv,
            prev_unstable=(None if prev_unstable is None
                           else set(prev_unstable)),
            fairness_left=fairness_left,
            widening_iterations=it.widening_iterations,
            visit_counts=dict(it.visit_counts),
            loop_invariants=dict(it.loop_invariants),
            useful_oct_packs=set(it.ctx.useful_oct_packs),
            useful_bool_packs=set(it.ctx.useful_bool_packs),
            degradation_applied=list(self.ladder.applied),
            incidents=self.incidents.incidents,
            incidents_dropped=self.incidents.dropped,
            degraded=self.degraded,
        )
        write_checkpoint(self.config.checkpoint_path, cp)
        self._checkpoints_written += 1
        if (self._halt_after is not None
                and self._checkpoints_written >= self._halt_after):
            raise SupervisorHalt(
                f"simulated kill after {self._checkpoints_written} "
                f"checkpoint(s); resume with "
                f"--resume {self.config.checkpoint_path}")

    def resume_into(self, it, loop_id: int, ordinal: int):
        """Offer a restore to an outermost fixpoint that is about to
        start iterating.  Returns ``(inv, prev_unstable, fairness_left,
        start_iteration)`` when this is the checkpointed fixpoint, else
        ``None``."""
        if not self._resume_pending:
            return None
        cp = self._resume_cp
        if ordinal != cp.ordinal:
            return None
        if loop_id != cp.loop_id:
            raise CheckpointError(
                f"checkpoint targets loop {cp.loop_id} at fixpoint ordinal "
                f"{cp.ordinal}, but the replayed run reached loop {loop_id} "
                f"— program or configuration drift")
        self._resume_pending = False
        # Swap in every piece of global state the skipped iterations
        # produced; the replayed prefix regenerated identical values for
        # everything before this point.
        it.widening_iterations = cp.widening_iterations
        it.visit_counts = dict(cp.visit_counts)
        it.loop_invariants = dict(cp.loop_invariants)
        it.ctx.useful_oct_packs.clear()
        it.ctx.useful_oct_packs.update(cp.useful_oct_packs)
        it.ctx.useful_bool_packs.clear()
        it.ctx.useful_bool_packs.update(cp.useful_bool_packs)
        return (cp.inv, cp.prev_unstable, cp.fairness_left,
                cp.next_iteration)
