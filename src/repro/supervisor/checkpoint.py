"""Iteration-boundary checkpoints and bit-identical resume.

The analysis spends essentially all of its time inside the widening/
narrowing fixpoints of outermost loops (the reactive main loop of the
program family).  A checkpoint is therefore taken *at the boundary of an
outermost fixpoint iteration*: it captures the loop invariant candidate,
the widening bookkeeping (iteration index, previously-unstable cells,
fairness budget), and every piece of iterator-global mutable state that
the skipped iterations would have produced (widening counters, visit
counts, collected loop invariants, pack-usefulness records, degradation
rungs, incidents).

Resume re-executes the program prefix from scratch — the analyzer is
deterministic, and everything before the dominant fixpoint is cheap —
then, when the fixpoint whose *invocation ordinal* matches the
checkpoint is entered, swaps in the captured snapshot and continues from
the recorded iteration.  Because the snapshot is the exact lattice
element and bookkeeping of the interrupted run, the resumed run is
bit-identical to an uninterrupted one.

Alarms need no capturing: checkpoints are only written inside fixpoints,
where checking mode is off (iteration mode emits no warnings —
Sect. 5.3), and the replayed prefix regenerates the pre-loop alarms
deduplicated by (statement id, kind) exactly as the original run did.
Certificate records (``repro.certify``) need no capturing for the same
reason: they are only appended during the checking pass, which runs
entirely after the last possible checkpoint boundary, so a resumed run
regenerates the full invariant map and certifies like an uninterrupted
one.

The on-disk format is a pickled dict (version-tagged, fingerprinted
against the program/config, written atomically via rename).  States
unpickle through the process-wide active-context registry, so
``load_checkpoint`` must run after ``set_active_context(ctx)``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..errors import CheckpointError
from .incidents import Incident

__all__ = ["Checkpoint", "context_fingerprint", "load_checkpoint",
           "write_checkpoint"]

CHECKPOINT_VERSION = 1


def context_fingerprint(ctx) -> str:
    """Hash of everything the checkpointed state is keyed against:
    statement ids, cell ids, pack layout, and the analysis-relevant
    starting configuration.  A resume against a different program or a
    differently-parameterized run is rejected up front instead of
    producing silently wrong (key-shifted) states.

    Deliberately excluded: the sharing/memoization knobs (incremental,
    lattice_memo_size, value_intern_size, closure_memo_size), the
    vectorized-kernel knobs (vectorize, vectorize_min_cells — the
    batched numpy backend is bit-identical to the scalar oracle), jobs
    and the dispatch backend/fleet (dispatch, workers — scheduling only,
    never merge order).  They affect physical identity and wall time
    only — results
    are bit-identical across their settings — so a checkpoint written
    under one setting must resume under any other.  (The intern pools are
    process-local; resume re-canonicalizes via reintern_env, keyed on
    values, never on intern ids.)"""
    from ..frontend import ir as I

    h = hashlib.sha256()
    sids: List[int] = []
    for name in sorted(ctx.prog.functions):
        fn = ctx.prog.functions[name]
        h.update(name.encode())
        if fn.body:
            sids.extend(s.sid for s in I.iter_stmts(fn.body))
    h.update(repr(sorted(sids)).encode())
    h.update(repr(ctx.table.cell_count).encode())
    h.update(repr((len(ctx.oct_packs), len(ctx.bool_packs),
                   len(ctx.filter_sites))).encode())
    cfg = ctx.config
    ts = cfg.thresholds
    h.update(repr((
        cfg.enable_clock, cfg.enable_octagons, cfg.enable_ellipsoids,
        cfg.enable_decision_trees, cfg.enable_linearization,
        cfg.widening_delay, cfg.delay_fairness_bound, cfg.narrowing_steps,
        cfg.max_widening_iterations, cfg.default_unroll,
        sorted(cfg.loop_unroll.items()), cfg.iteration_epsilon,
        sorted(cfg.input_ranges.items()), cfg.max_clock,
        None if ts is None else len(ts),
    )).encode())
    return h.hexdigest()


@dataclass
class Checkpoint:
    """A resumable snapshot of an in-flight analysis."""

    fingerprint: str
    # Which outermost fixpoint (by deterministic invocation ordinal) and
    # which of its iterations the snapshot was taken at.
    ordinal: int
    loop_id: int
    next_iteration: int
    # Fixpoint-local bookkeeping.
    inv: object  # AbstractState
    prev_unstable: Optional[Set[int]]
    fairness_left: int
    # Iterator-global mutable state the skipped iterations produced.
    widening_iterations: int
    visit_counts: Dict[int, int] = field(default_factory=dict)
    loop_invariants: Dict[int, object] = field(default_factory=dict)
    useful_oct_packs: Set[int] = field(default_factory=set)
    useful_bool_packs: Set[int] = field(default_factory=set)
    # Robustness context: rungs live at snapshot time, incidents so far.
    degradation_applied: List[str] = field(default_factory=list)
    incidents: List[Incident] = field(default_factory=list)
    incidents_dropped: int = 0
    degraded: bool = False


def write_checkpoint(path: str, cp: Checkpoint) -> None:
    """Atomically persist a checkpoint (write-to-temp + rename), so a
    kill mid-write leaves the previous checkpoint intact."""
    payload = {"version": CHECKPOINT_VERSION, "checkpoint": cp}
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as f:
        pickle.dump(payload, f, pickle.HIGHEST_PROTOCOL)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: str, expected_fingerprint: str) -> Checkpoint:
    """Load and validate a checkpoint.

    Requires the target run's ``AnalysisContext`` to be installed via
    ``set_active_context`` first (abstract states re-attach to it during
    unpickling)."""
    try:
        with open(path, "rb") as f:
            payload = pickle.load(f)
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint file not found: {path}")
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ValueError) as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}")
    if not isinstance(payload, dict) or "checkpoint" not in payload:
        raise CheckpointError(f"corrupt checkpoint {path}: bad payload")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {payload.get('version')!r}, "
            f"this analyzer writes version {CHECKPOINT_VERSION}")
    cp = payload["checkpoint"]
    if cp.fingerprint != expected_fingerprint:
        raise CheckpointError(
            f"checkpoint {path} does not match this program/configuration "
            f"(fingerprint {cp.fingerprint[:12]}… vs "
            f"{expected_fingerprint[:12]}…)")
    return cp
