"""The soundness-preserving degradation ladder.

When a budget trips mid-run the supervisor steps down this ladder, one
rung per trip, mutating the (run-owned) :class:`AnalyzerConfig` in place.
Every rung only *removes* precision — a domain stops being updated and,
crucially, stops being *consulted* (all reduction and refinement paths
are gated on the same ``enable_*`` flags) — so each abstract value after
the rung over-approximates the value the full analysis would have
computed.  The verdict stays sound; it merely gets coarser:

1. ``thin-thresholds`` — keep every 4th widening threshold, so unstable
   bounds climb the ladder in far fewer fixpoint iterations;
2. ``drop-ellipsoids`` — digital-filter sites fall back to the interval
   envelope (ellipsoid → octagon/interval per pack);
3. ``drop-octagons`` — relational pack facts are abandoned; cells keep
   their interval bounds;
4. ``interval-only`` — decision trees, linearization, loop unrolling,
   narrowing, and the threshold ladder are all switched off: plain
   interval iteration with straight-to-infinity widening, the cheapest
   configuration that still terminates with a sound verdict.

Stale domain content already stored in live abstract states is harmless:
with the enable flag off, no transfer function, guard, or reduction ever
reads it again, and the persistent-map merges keep it physically shared
(no memory growth).
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from ..config import AnalyzerConfig
from ..domains.thresholds import ThresholdSet

__all__ = ["DegradationLadder", "DEGRADATION_RUNGS"]

THRESHOLD_THIN_STRIDE = 4


def _thin_thresholds(cfg: AnalyzerConfig) -> str:
    ts = cfg.thresholds
    if ts is None:
        return "no thresholds to thin"
    finite = [v for v in ts.values if math.isfinite(v) and v != 0.0]
    kept = finite[::THRESHOLD_THIN_STRIDE]
    cfg.thresholds = ThresholdSet(kept)
    return f"widening thresholds {len(finite)} -> {len(kept)}"


def _drop_ellipsoids(cfg: AnalyzerConfig) -> str:
    cfg.enable_ellipsoids = False
    return "filter sites fall back to interval envelopes"


def _drop_octagons(cfg: AnalyzerConfig) -> str:
    cfg.enable_octagons = False
    cfg.octagon_pivot_reduction = False
    return "octagon packs fall back to cell intervals"


def _interval_only(cfg: AnalyzerConfig) -> str:
    cfg.enable_decision_trees = False
    cfg.enable_linearization = False
    cfg.thresholds = None
    cfg.narrowing_steps = 0
    cfg.default_unroll = 0
    cfg.loop_unroll = {}
    return ("interval-only iteration: trees/linearization off, "
            "widening straight to infinity, no unrolling/narrowing")


DEGRADATION_RUNGS: List[Tuple[str, Callable[[AnalyzerConfig], str]]] = [
    ("thin-thresholds", _thin_thresholds),
    ("drop-ellipsoids", _drop_ellipsoids),
    ("drop-octagons", _drop_octagons),
    ("interval-only", _interval_only),
]


class DegradationLadder:
    """Tracks how far down the ladder a run has stepped.

    The config instance handed in must be *owned by the run* (the
    supervisor copies the caller's config before attaching), because the
    rungs mutate it in place — the iterator, transfer functions, and
    guard engine all read the same instance, so a rung takes effect at
    the very next statement.
    """

    def __init__(self, config: AnalyzerConfig) -> None:
        self.config = config
        self.applied: List[str] = []

    @property
    def exhausted(self) -> bool:
        return len(self.applied) >= len(DEGRADATION_RUNGS)

    def step(self) -> Optional[Tuple[str, str]]:
        """Apply the next rung; returns ``(name, detail)`` or ``None``
        when the ladder is exhausted."""
        idx = len(self.applied)
        if idx >= len(DEGRADATION_RUNGS):
            return None
        name, fn = DEGRADATION_RUNGS[idx]
        detail = fn(self.config)
        self.applied.append(name)
        return name, detail

    def apply_named(self, names: Sequence[str]) -> None:
        """Re-apply a recorded prefix of the ladder (checkpoint resume).

        Checkpoints store the rungs that were live when they were
        written; a resumed run re-applies them up front so the restored
        invariant continues under a configuration at least as coarse as
        the one that produced it (soundness is preserved either way —
        rungs only remove precision)."""
        by_name = dict(DEGRADATION_RUNGS)
        for name in names:
            if name in self.applied:
                continue
            fn = by_name.get(name)
            if fn is None:
                raise ValueError(f"unknown degradation rung {name!r}")
            fn(self.config)
            self.applied.append(name)
