"""Resource budgets and the watchdog thread.

A budget never kills the analysis: when a limit trips, the watchdog
raises a flag that the iterator polls at statement and fixpoint-iteration
boundaries, and the supervisor answers by stepping down the degradation
ladder (see :mod:`.degradation`).  The run therefore always terminates
with a sound — possibly coarser — verdict.

The RSS ceiling is checked against the *peak* resident set size of the
analyzer plus its worker children (``ru_maxrss``, refined by
``/proc/self/status`` where available).  Peak RSS is monotone, so once
the ceiling trips it stays tripped: the ladder runs to the end and the
analysis finishes under the cheapest sound configuration.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["ResourceBudget", "BudgetWatchdog", "peak_rss_kib",
           "peak_rss_self_kib"]


def peak_rss_kib() -> int:
    """Peak RSS of this process plus its (worker) children, in KiB.

    Socket-dispatch workers (:mod:`repro.parallel.remote`) are *not*
    children of the analyzer and are invisible to this reading; they
    report their own :func:`peak_rss_self_kib` over the wire and the
    dispatch backend aggregates the fleet maximum (see
    ``AnalysisResult.fleet_peak_rss_kib``).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
           + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        rss //= 1024
    return int(rss)


def peak_rss_self_kib() -> int:
    """Peak RSS of this process only, in KiB (what a dispatch worker
    reports about itself in job results)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        rss //= 1024
    return int(rss)


@dataclass
class ResourceBudget:
    """The per-run limits; ``None`` disables the corresponding check."""

    wall_deadline_s: Optional[float] = None
    rss_limit_kib: Optional[int] = None
    stmt_timeout_s: Optional[float] = None

    @property
    def needs_watchdog(self) -> bool:
        return (self.wall_deadline_s is not None
                or self.rss_limit_kib is not None)

    @property
    def active(self) -> bool:
        return self.needs_watchdog or self.stmt_timeout_s is not None

    def check(self, started_at: float) -> Optional[str]:
        """Return the name of the first exceeded budget, or ``None``."""
        if (self.wall_deadline_s is not None
                and time.perf_counter() - started_at > self.wall_deadline_s):
            return "deadline"
        if (self.rss_limit_kib is not None
                and peak_rss_kib() > self.rss_limit_kib):
            return "rss"
        return None


class BudgetWatchdog:
    """Daemon thread sampling the budgets on a fixed interval.

    The watchdog only *observes*; it communicates through the supplied
    ``on_trip(reason)`` callback, which must be cheap and thread-safe
    (the supervisor's implementation just sets a flag the iterator polls
    from the analysis thread).
    """

    def __init__(self, budget: ResourceBudget, started_at: float,
                 on_trip: Callable[[str], None],
                 interval_s: float = 0.05) -> None:
        self.budget = budget
        self.started_at = started_at
        self.on_trip = on_trip
        self.interval_s = max(0.001, interval_s)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None or not self.budget.needs_watchdog:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-budget-watchdog", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            reason = self.budget.check(self.started_at)
            if reason is not None:
                self.on_trip(reason)
