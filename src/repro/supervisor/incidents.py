"""Structured incident records.

Every deviation from the happy path — a worker crash, a tripped budget, a
degradation step, a disabled subsystem — is recorded as an
:class:`Incident` instead of being silently swallowed or raised at the
user.  The log rides on the :class:`~repro.analysis.AnalysisResult` so a
caller can audit exactly what the run survived and what it cost in
precision.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["Incident", "IncidentLog"]


class IncidentKind:
    """Well-known incident kinds (free-form strings are also accepted)."""

    WORKER_CRASH = "worker-crash"
    PICKLING_ERROR = "pickling-error"
    PARALLEL_DISABLED = "parallel-disabled"
    DEADLINE = "deadline"
    RSS = "rss"
    STMT_TIMEOUT = "stmt-timeout"
    DEGRADED = "degraded"
    CHECKPOINT = "checkpoint"
    RESUME = "resume"


@dataclass(frozen=True)
class Incident:
    """One recorded deviation from the happy path.

    ``kind`` names what happened, ``action`` what the supervisor did
    about it (``retry``, ``rebuild-pool``, ``sequential-fallback``,
    ``degrade:<rung>``, ``exhausted-ladder``, ...), ``detail`` is a
    human-readable elaboration, and ``at_s`` is the offset from analysis
    start (informational only — never compared for determinism).
    """

    kind: str
    action: str
    detail: str
    at_s: float

    def __str__(self) -> str:
        base = f"[{self.kind}] {self.action}"
        return f"{base}: {self.detail}" if self.detail else base


class IncidentLog:
    """Append-only, size-capped incident sink shared by the supervisor
    and the parallel engine."""

    MAX_INCIDENTS = 200

    def __init__(self) -> None:
        self._incidents: List[Incident] = []
        self.dropped: int = 0
        self._t0 = time.perf_counter()

    def record(self, kind: str, action: str = "", detail: str = "") -> None:
        if len(self._incidents) >= self.MAX_INCIDENTS:
            self.dropped += 1
            return
        self._incidents.append(
            Incident(kind, action, detail, time.perf_counter() - self._t0))

    @property
    def incidents(self) -> List[Incident]:
        return list(self._incidents)

    def count(self, kind: str) -> int:
        return sum(1 for i in self._incidents if i.kind == kind)

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for i in self._incidents:
            out[i.kind] = out.get(i.kind, 0) + 1
        return out

    def restore(self, incidents: Sequence[Incident], dropped: int = 0) -> None:
        """Replace the log's contents (checkpoint resume)."""
        self._incidents = list(incidents)
        self.dropped = dropped

    def __len__(self) -> int:
        return len(self._incidents)

    def __iter__(self):
        return iter(self._incidents)
