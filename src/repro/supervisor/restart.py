"""Restart pacing for supervised workers: exponential backoff + jitter.

Restarting a crashed worker immediately invites a crash loop that burns
a CPU re-dying; restarting on a fixed schedule synchronizes retries.
:class:`RestartPolicy` produces the standard answer — exponentially
growing delays with multiplicative jitter — from a *seeded* RNG, so a
chaos test that pins the seed observes the exact same delay sequence on
every run (the serving layer's determinism contract extends to its
fault-handling timings).
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["RestartPolicy"]


class RestartPolicy:
    """Delay schedule for restarting a repeatedly failing component.

    ``next_delay()`` returns ``base * factor**failures`` capped at
    ``cap``, stretched by up to ``jitter`` (a fraction, e.g. 0.5 adds
    0-50%), and counts the failure.  ``reset()`` is called after a
    success so an isolated crash does not inflate later delays.
    """

    def __init__(self, base_s: float = 0.05, cap_s: float = 5.0,
                 factor: float = 2.0, jitter: float = 0.5,
                 seed: Optional[int] = None):
        self.base_s = base_s
        self.cap_s = cap_s
        self.factor = factor
        self.jitter = jitter
        self.failures = 0
        self._rng = random.Random(seed)

    def next_delay(self) -> float:
        delay = min(self.cap_s, self.base_s * (self.factor ** self.failures))
        self.failures += 1
        return delay * (1.0 + self.jitter * self._rng.random())

    def reset(self) -> None:
        self.failures = 0
