"""Abstract transfer functions for IR expressions (Sect. 5.4, 6.3).

Expression evaluation computes, for every IR expression:

* a :class:`~repro.domains.values.CellValue` over-approximating the set of
  concrete results, with concrete float rounding applied per operation
  (``round_to``) and integer overflows wiped to the type range after an
  alarm is raised (Sect. 5.3);
* optionally an interval linear form (Sect. 6.3) over cell ids, sound over
  the reals with the concrete rounding absorbed into interval error terms —
  used both to refine the interval result (the ``X - 0.2*X`` precision fix)
  and as the input language of the relational domains;
* possible alarms, reported to the collector only in checking mode.

Reading a cell triggers the relational reduction of the state (octagon and
decision-tree bounds tighten the interval on demand), so evaluation
threads the state through and returns a possibly-refined state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..domains.values import CellValue, const_value, top_value
from ..frontend import ir as I
from ..frontend.ast_nodes import Location
from ..frontend.c_types import FLOAT, INT, EnumType, FloatType, IntType
from ..memory.cells import (
    AtomicLayout, CellInfo, CellLayout, ExpandedArrayLayout, RecordLayout,
    ShrunkArrayLayout,
)
from ..numeric import FloatInterval, IntInterval, LinearForm
from .alarms import AlarmCollector, AlarmKind
from .state import AbstractState, AnalysisContext

__all__ = ["Transfer", "EvalResult"]


@dataclass
class EvalResult:
    value: CellValue
    form: Optional[LinearForm]
    state: AbstractState

    @property
    def is_bottom(self) -> bool:
        return self.value.is_bottom


class Transfer:
    """Expression evaluation; one instance per analysis run."""

    def __init__(self, ctx: AnalysisContext, alarms: AlarmCollector):
        self.ctx = ctx
        self.alarms = alarms
        # Call-by-reference bindings of the current call stack:
        # param var uid -> actual LValue (grows/shrinks with inlined calls).
        self.bindings: List[Dict[int, I.LValue]] = [{}]

    # -- deref resolution -------------------------------------------------------

    def resolve_deref(self, var: I.Var) -> I.LValue:
        for frame in reversed(self.bindings):
            if var.uid in frame:
                return frame[var.uid]
        raise KeyError(f"unbound by-reference parameter {var.name}")

    # -- l-value resolution ------------------------------------------------------

    def resolve_lvalue(self, state: AbstractState, lv: I.LValue, sid: int,
                       loc: Location) -> Tuple[AbstractState, List[Tuple[CellInfo, bool]]]:
        """Resolve to [(cell, exact)] pairs; ``exact`` allows strong update."""
        state, layouts = self._resolve_layouts(state, lv, sid, loc)
        cells: List[Tuple[CellInfo, bool]] = []
        for layout, exact in layouts:
            if isinstance(layout, AtomicLayout):
                cells.append((layout.cell, exact))
            elif isinstance(layout, ShrunkArrayLayout):
                cells.append((layout.cell, False))
            else:  # pragma: no cover - scalar lvalues only reach cells
                raise TypeError(f"non-scalar l-value resolution: {layout}")
        return state, cells

    def _resolve_layouts(self, state: AbstractState, lv: I.LValue, sid: int,
                         loc: Location) -> Tuple[AbstractState, List[Tuple[CellLayout, bool]]]:
        if isinstance(lv, I.LVar):
            if not self.ctx.table.has_var(lv.var.uid):
                self.ctx.table.add_var(lv.var)
            return state, [(self.ctx.table.layout(lv.var.uid), True)]
        if isinstance(lv, I.LDeref):
            actual = self.resolve_deref(lv.var)
            return self._resolve_layouts(state, actual, sid, loc)
        if isinstance(lv, I.LField):
            state, bases = self._resolve_layouts(state, lv.base, sid, loc)
            out: List[Tuple[CellLayout, bool]] = []
            for base, exact in bases:
                if isinstance(base, RecordLayout):
                    out.append((base.field(lv.fieldname), exact))
                elif isinstance(base, ShrunkArrayLayout):
                    out.append((base, False))  # summarized record array
            return state, out
        if isinstance(lv, I.LIndex):
            state, bases = self._resolve_layouts(state, lv.base, sid, loc)
            res = self.eval(state, lv.index, sid, loc)
            state = res.state
            idx = res.value.itv
            if not isinstance(idx, IntInterval):
                idx = IntInterval.from_float_interval(res.value.float_range())
            out = []
            for base, exact in bases:
                if isinstance(base, ExpandedArrayLayout):
                    legal = idx.meet(IntInterval.of(0, base.length - 1))
                    if not idx.includes(legal) or not legal.includes(idx):
                        if legal != idx:
                            self.alarms.report(
                                AlarmKind.ARRAY_OOB, sid, loc,
                                f"index {idx} outside [0, {base.length - 1}]")
                    if legal.is_empty:
                        continue
                    if legal.is_const and exact:
                        out.append((base.elements[legal.lo], True))
                    else:
                        for i in range(legal.lo, legal.hi + 1):
                            out.append((base.elements[i], False))
                elif isinstance(base, ShrunkArrayLayout):
                    legal = idx.meet(IntInterval.of(0, base.length - 1))
                    if legal != idx:
                        self.alarms.report(
                            AlarmKind.ARRAY_OOB, sid, loc,
                            f"index {idx} outside [0, {base.length - 1}]")
                    if not legal.is_empty:
                        out.append((base, False))
            return state, out
        raise TypeError(f"unknown l-value {lv!r}")  # pragma: no cover

    # -- cell reads -----------------------------------------------------------------

    def read_cell(self, state: AbstractState, cell: CellInfo) -> Tuple[AbstractState, CellValue]:
        if cell.volatile:
            rng = self.ctx_volatile_range(cell)
            return state, rng
        state = state.reduce_cell_from_relational(cell.cid)
        v = state.env.get(cell.cid)
        if v is None:
            v = top_value(cell.ctype)
        if self.ctx.config.enable_clock:
            v = v.reduce_with_clock(state.env.clock)
        return state, v

    def ctx_volatile_range(self, cell: CellInfo) -> CellValue:
        name = _var_source_name(self.ctx, cell)
        rng = self.ctx.config.input_ranges.get(name)
        if rng is None:
            return top_value(cell.ctype)
        lo, hi = rng
        if isinstance(cell.ctype, FloatType):
            return CellValue(FloatInterval.of(float(lo), float(hi)))
        return CellValue(IntInterval.of(int(math.ceil(lo)), int(math.floor(hi))))

    # -- expression evaluation ---------------------------------------------------------

    def eval(self, state: AbstractState, expr: I.Expr, sid: int,
             loc: Location) -> EvalResult:
        if isinstance(expr, I.Const):
            v = const_value(expr.ctype, expr.value)
            form = None
            if isinstance(expr.ctype, FloatType):
                form = LinearForm.constant(FloatInterval.const(float(expr.value)))
            return EvalResult(v, form, state)
        if isinstance(expr, I.Load):
            state, cells = self.resolve_lvalue(state, expr.lval, sid, loc)
            if not cells:
                return EvalResult(CellValue(IntInterval.empty()), None, state)
            acc: Optional[CellValue] = None
            for cell, _ in cells:
                state, v = self.read_cell(state, cell)
                acc = v if acc is None else acc.join(v)
            form = None
            if len(cells) == 1 and not cells[0][0].volatile:
                cell = cells[0][0]
                # Both float and int cells may appear in (real-field) forms.
                form = LinearForm.var(cell.cid)
            return EvalResult(acc, form, state)
        if isinstance(expr, I.UnaryOp):
            return self._eval_unary(state, expr, sid, loc)
        if isinstance(expr, I.BinOp):
            return self._eval_binop(state, expr, sid, loc)
        if isinstance(expr, I.BoolOp):
            return self._eval_boolop(state, expr, sid, loc)
        if isinstance(expr, I.NotOp):
            inner = self.eval(state, expr.arg, sid, loc)
            t = self.truth(inner.value)
            if t is True:
                v = const_value(INT, 0)
            elif t is False:
                v = const_value(INT, 1)
            else:
                v = CellValue(IntInterval.of(0, 1))
            return EvalResult(v, None, inner.state)
        if isinstance(expr, I.Cast):
            return self._eval_cast(state, expr, sid, loc)
        raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover

    def lookup_form_var(self, state: AbstractState):
        return lambda cid: state.cell_float_range(cid)

    # -- unary ---------------------------------------------------------------------------

    def _eval_unary(self, state: AbstractState, expr: I.UnaryOp, sid: int,
                    loc: Location) -> EvalResult:
        inner = self.eval(state, expr.arg, sid, loc)
        state = inner.state
        v = inner.value
        if v.is_bottom:
            return EvalResult(v, None, state)
        if expr.op == "neg":
            if isinstance(expr.ctype, FloatType):
                iv = v.float_range().neg()
                form = inner.form.neg() if inner.form is not None else None
                return self._float_result(state, iv, form, expr.ctype, sid, loc,
                                          rounded=False)
            out = v.itv.neg()
            out, _ = self._clamp_int(out, expr.ctype, sid, loc)
            return EvalResult(CellValue(out), None, state)
        if expr.op == "bnot":
            assert isinstance(expr.ctype, IntType)
            # ~x = -x - 1 on two's complement.
            out = v.itv.neg().sub(IntInterval.const(1))
            out, _ = self._clamp_int(out, expr.ctype, sid, loc)
            return EvalResult(CellValue(out), None, state)
        if expr.op == "fabs":
            iv = v.float_range().abs()
            return self._float_result(state, iv, None, expr.ctype, sid, loc,
                                      rounded=False)
        if expr.op == "sqrt":
            fr = v.float_range()
            if fr.lo < 0.0:
                self.alarms.report(AlarmKind.INVALID_OP, sid, loc,
                                   f"sqrt of possibly negative value {fr}")
            iv = fr.sqrt()
            return self._float_result(state, iv, None, expr.ctype, sid, loc,
                                      rounded=True)
        raise TypeError(f"unknown unary op {expr.op}")  # pragma: no cover

    # -- binary --------------------------------------------------------------------------

    def _eval_binop(self, state: AbstractState, expr: I.BinOp, sid: int,
                    loc: Location) -> EvalResult:
        left = self.eval(state, expr.left, sid, loc)
        right = self.eval(left.state, expr.right, sid, loc)
        state = right.state
        lv, rv = left.value, right.value
        if lv.is_bottom or rv.is_bottom:
            return EvalResult(CellValue(IntInterval.empty()), None, state)
        if expr.is_comparison:
            return self._eval_comparison(state, expr, lv, rv)
        if isinstance(expr.ctype, FloatType):
            return self._eval_float_arith(state, expr, left, right, sid, loc)
        return self._eval_int_arith(state, expr, lv, rv, sid, loc)

    def _eval_comparison(self, state: AbstractState, expr: I.BinOp,
                         lv: CellValue, rv: CellValue) -> EvalResult:
        result = _compare(expr.op, lv, rv, expr.operand_type)
        if result is True:
            v = const_value(INT, 1)
        elif result is False:
            v = const_value(INT, 0)
        else:
            v = CellValue(IntInterval.of(0, 1))
        return EvalResult(v, None, state)

    def _eval_int_arith(self, state: AbstractState, expr: I.BinOp,
                        lv: CellValue, rv: CellValue, sid: int,
                        loc: Location) -> EvalResult:
        a, b = lv.itv, rv.itv
        if not isinstance(a, IntInterval):
            a = IntInterval.from_float_interval(lv.float_range())
        if not isinstance(b, IntInterval):
            b = IntInterval.from_float_interval(rv.float_range())
        op = expr.op
        if op == "add":
            out = a.add(b)
        elif op == "sub":
            out = a.sub(b)
        elif op == "mul":
            out = a.mul(b)
        elif op == "div":
            if b.contains_zero():
                self.alarms.report(AlarmKind.DIV_BY_ZERO, sid, loc,
                                   f"integer division by zero, divisor in {b}")
            out = a.div_trunc(b)
        elif op == "mod":
            if b.contains_zero():
                self.alarms.report(AlarmKind.MOD_BY_ZERO, sid, loc,
                                   f"modulo by zero, divisor in {b}")
            out = a.mod_trunc(b)
        elif op in ("shl", "shr"):
            out = self._eval_shift(op, a, b, expr.ctype, sid, loc)
        elif op in ("band", "bor", "bxor"):
            out = _bitwise(op, a, b, expr.ctype)
        else:  # pragma: no cover
            raise TypeError(f"unknown int op {op}")
        out, _ = self._clamp_int(out, expr.ctype, sid, loc)
        return EvalResult(CellValue(out), None, state)

    def _eval_shift(self, op: str, a: IntInterval, b: IntInterval,
                    ctype: IntType, sid: int, loc: Location) -> IntInterval:
        bits = ctype.bits
        legal = b.meet(IntInterval.of(0, bits - 1))
        if legal != b:
            self.alarms.report(AlarmKind.SHIFT_RANGE, sid, loc,
                               f"shift amount {b} outside [0, {bits - 1}]")
        if legal.is_empty:
            return IntInterval.empty()
        if legal.is_const:
            k = legal.lo
            if op == "shl":
                return a.mul(IntInterval.const(1 << k))
            # Arithmetic shift right on the value range.
            lo = None if a.lo is None else a.lo >> k
            hi = None if a.hi is None else a.hi >> k
            return IntInterval.of(lo, hi)
        # Variable shift: bound by the extremes.
        if op == "shl":
            return a.mul(IntInterval.of(1 << legal.lo, 1 << legal.hi))
        lo_candidates = []
        hi_candidates = []
        for k in (legal.lo, legal.hi):
            lo_candidates.append(None if a.lo is None else a.lo >> k)
            hi_candidates.append(None if a.hi is None else a.hi >> k)
        lo = None if None in lo_candidates else min(lo_candidates)
        hi = None if None in hi_candidates else max(hi_candidates)
        return IntInterval.of(lo, hi)

    def _eval_float_arith(self, state: AbstractState, expr: I.BinOp,
                          left: EvalResult, right: EvalResult, sid: int,
                          loc: Location) -> EvalResult:
        fmt = expr.ctype.fmt
        a = left.value.float_range()
        b = right.value.float_range()
        op = expr.op
        form: Optional[LinearForm] = None
        lookup = self.lookup_form_var(state)
        lin_on = self.ctx.config.enable_linearization
        if op == "add":
            iv = a.add(b)
            if lin_on and left.form is not None and right.form is not None:
                form = left.form.add(right.form)
        elif op == "sub":
            iv = a.sub(b)
            if lin_on and left.form is not None and right.form is not None:
                form = left.form.sub(right.form)
        elif op == "mul":
            iv = a.mul(b)
            if lin_on and left.form is not None and right.form is not None:
                if left.form.is_constant:
                    form = right.form.scale(left.form.const)
                elif right.form.is_constant:
                    form = left.form.scale(right.form.const)
                else:
                    # Non-linear: intervalize the smaller-magnitude side.
                    form = left.form.scale(right.form.evaluate(lookup))
        elif op == "div":
            if b.contains_zero():
                self.alarms.report(AlarmKind.DIV_BY_ZERO, sid, loc,
                                   f"float division by zero, divisor in {b}")
            iv = a.div(b)
            if lin_on and left.form is not None and right.form is not None:
                denom = (right.form.const if right.form.is_constant
                         else right.form.evaluate(lookup))
                if not denom.contains_zero() and not denom.is_empty:
                    recip = FloatInterval.const(1.0).div(denom)
                    form = left.form.scale(recip)
        else:  # pragma: no cover
            raise TypeError(f"unknown float op {op}")
        if form is not None:
            form = form.with_float_rounding(fmt, lookup)
        return self._float_result(state, iv, form, expr.ctype, sid, loc,
                                  rounded=True)

    def _eval_boolop(self, state: AbstractState, expr: I.BoolOp, sid: int,
                     loc: Location) -> EvalResult:
        left = self.eval(state, expr.left, sid, loc)
        right = self.eval(left.state, expr.right, sid, loc)
        state = right.state
        lt = self.truth(left.value)
        rt = self.truth(right.value)
        if expr.op == "and":
            if lt is False or rt is False:
                v = const_value(INT, 0)
            elif lt is True and rt is True:
                v = const_value(INT, 1)
            else:
                v = CellValue(IntInterval.of(0, 1))
        else:
            if lt is True or rt is True:
                v = const_value(INT, 1)
            elif lt is False and rt is False:
                v = const_value(INT, 0)
            else:
                v = CellValue(IntInterval.of(0, 1))
        return EvalResult(v, None, state)

    def _eval_cast(self, state: AbstractState, expr: I.Cast, sid: int,
                   loc: Location) -> EvalResult:
        inner = self.eval(state, expr.arg, sid, loc)
        state = inner.state
        v = inner.value
        if v.is_bottom:
            return EvalResult(v, None, state)
        src = _expr_ctype(expr.arg)
        dst = expr.ctype
        if isinstance(dst, FloatType):
            iv = v.float_range()
            form = inner.form
            if isinstance(src, FloatType) and src.fmt.precision <= dst.fmt.precision:
                # Widening float cast is exact.
                return EvalResult(CellValue(iv), form, state)
            lookup = self.lookup_form_var(state)
            if form is not None:
                form = form.with_float_rounding(dst.fmt, lookup)
            return self._float_result(state, iv, form, dst, sid, loc, rounded=True)
        # Integer destination.
        assert isinstance(dst, (IntType, EnumType))
        if isinstance(src, FloatType):
            as_int = IntInterval.from_float_interval(v.float_range())
        else:
            as_int = v.itv if isinstance(v.itv, IntInterval) else \
                IntInterval.from_float_interval(v.float_range())
        rng = IntInterval.of(dst.min_value, dst.max_value)
        clipped = as_int.meet(rng)
        if clipped != as_int:
            self.alarms.report(
                AlarmKind.CAST_RANGE, sid, loc,
                f"conversion of {as_int} to {dst} may overflow")
        return EvalResult(CellValue(clipped), None, state)

    # -- helpers -----------------------------------------------------------------------

    def _float_result(self, state: AbstractState, iv: FloatInterval,
                      form: Optional[LinearForm], ctype: FloatType, sid: int,
                      loc: Location, rounded: bool) -> EvalResult:
        """Apply concrete rounding + overflow clamp; refine with the form."""
        if rounded:
            iv, may_overflow = iv.round_to(ctype.fmt)
            if may_overflow:
                self.alarms.report(AlarmKind.FLOAT_OVERFLOW, sid, loc,
                                   f"float result may overflow {ctype}")
        if form is not None:
            refined = form.evaluate(self.lookup_form_var(state))
            # The form is sound over the same concrete semantics; meet.
            met = iv.meet(refined)
            if not met.is_empty:
                iv = met
            # Octagonal refinement of ±x∓y-shaped forms (Sect. 6.2.2).
            oct_bound, pack_ids = state.octagon_eval(form)
            if not oct_bound.is_top:
                met = iv.meet(oct_bound)
                if not met.is_empty and met != iv:
                    iv = met
                    for pack_id in pack_ids:
                        state._mark_useful(pack_id, "oct")
        return EvalResult(CellValue(iv), form, state)

    def _clamp_int(self, out: IntInterval, ctype, sid: int,
                   loc: Location) -> Tuple[IntInterval, bool]:
        """Overflow check + wipe-out to the type range (Sect. 5.3)."""
        if isinstance(ctype, EnumType):
            ctype = INT
        rng = IntInterval.of(ctype.min_value, ctype.max_value)
        clipped = out.meet(rng)
        overflowed = clipped != out
        if overflowed:
            self.alarms.report(
                AlarmKind.INT_OVERFLOW, sid, loc,
                f"{ctype} arithmetic may overflow: result in {out}")
        return clipped, overflowed

    @staticmethod
    def truth(v: CellValue) -> Optional[bool]:
        """Definite truth value of a scalar abstract value, if any."""
        if v.is_bottom:
            return None
        itv = v.itv
        if isinstance(itv, IntInterval):
            if not itv.contains_zero():
                return True
            if itv.is_const:
                return False
            return None
        if not itv.contains(0.0):
            return True
        if itv.is_const:
            return False
        return None


def _compare(op: str, lv: CellValue, rv: CellValue, operand_type) -> Optional[bool]:
    """Three-valued comparison over abstract values."""
    if isinstance(operand_type, FloatType):
        a, b = lv.float_range(), rv.float_range()
        lo_a, hi_a, lo_b, hi_b = a.lo, a.hi, b.lo, b.hi
    else:
        ai = lv.itv if isinstance(lv.itv, IntInterval) else \
            IntInterval.from_float_interval(lv.float_range())
        bi = rv.itv if isinstance(rv.itv, IntInterval) else \
            IntInterval.from_float_interval(rv.float_range())
        lo_a = -math.inf if ai.lo is None else ai.lo
        hi_a = math.inf if ai.hi is None else ai.hi
        lo_b = -math.inf if bi.lo is None else bi.lo
        hi_b = math.inf if bi.hi is None else bi.hi
    if op == "lt":
        if hi_a < lo_b:
            return True
        if lo_a >= hi_b:
            return False
        return None
    if op == "le":
        if hi_a <= lo_b:
            return True
        if lo_a > hi_b:
            return False
        return None
    if op == "gt":
        return _compare("lt", rv, lv, operand_type)
    if op == "ge":
        return _compare("le", rv, lv, operand_type)
    if op == "eq":
        if lo_a == hi_a == lo_b == hi_b:
            return True
        if hi_a < lo_b or lo_a > hi_b:
            return False
        return None
    if op == "ne":
        r = _compare("eq", lv, rv, operand_type)
        return None if r is None else not r
    raise TypeError(f"unknown comparison {op}")  # pragma: no cover


def _bitwise(op: str, a: IntInterval, b: IntInterval, ctype: IntType) -> IntInterval:
    """Coarse but sound bitwise transfer functions."""
    if a.is_empty or b.is_empty:
        return IntInterval.empty()
    # Constant case is exact.
    if a.is_const and b.is_const:
        x, y = a.lo, b.lo
        if op == "band":
            return IntInterval.const(x & y)
        if op == "bor":
            return IntInterval.const(x | y)
        return IntInterval.const(x ^ y)
    nonneg = (a.lo is not None and a.lo >= 0 and b.lo is not None and b.lo >= 0)
    if nonneg and a.hi is not None and b.hi is not None:
        if op == "band":
            return IntInterval.of(0, min(a.hi, b.hi))
        # |x op y| < 2^(bits of max operand)
        bound = 1
        while bound <= max(a.hi, b.hi):
            bound <<= 1
        return IntInterval.of(0, bound - 1)
    # Fall back to the type range.
    return IntInterval.of(ctype.min_value, ctype.max_value)


def _expr_ctype(e: I.Expr):
    if isinstance(e, I.Const):
        return e.ctype
    if isinstance(e, I.Load):
        return e.lval.ctype
    return e.ctype


def _var_source_name(ctx: AnalysisContext, cell: CellInfo) -> str:
    for v in ctx.prog.globals:
        if v.uid == cell.var_uid:
            return v.name
    return cell.name
