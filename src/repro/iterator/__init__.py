"""The abstract interpreter: iterator, transfer functions, guards, alarms."""

from .alarms import Alarm, AlarmCollector, AlarmKind
from .iterator import Flow, Iterator
from .state import AbstractState, AnalysisContext
from .transfer import Transfer

__all__ = [
    "AbstractState",
    "Alarm",
    "AlarmCollector",
    "AlarmKind",
    "AnalysisContext",
    "Flow",
    "Iterator",
    "Transfer",
]
