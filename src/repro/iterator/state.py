"""The full abstract state: reduced product of all domains (Sect. 6).

An :class:`AbstractState` bundles

* the non-relational memory environment (intervals + clocked components),
* one octagon per octagon pack (Sect. 6.2.2 / 7.2.1),
* one decision tree per boolean pack (Sect. 6.2.4 / 7.2.3),
* one ellipsoidal bound ``k`` per detected filter site (Sect. 6.2.3),

all held in persistent functional maps so the lattice operations inherit
the sharing shortcuts of Sect. 6.1.2.  The cross-domain *reduction* steps
prescribed by the paper live here:

* before join/widening, an ellipsoid bound that is top on one side and
  finite on the other is refined from the interval box (Sect. 6.2.3);
* octagon- and tree-supplied bounds tighten cell intervals on demand (the
  packing-usefulness statistics of Sect. 7.2.2 are recorded when such a
  tightening actually happens).
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import AnalyzerConfig
from ..domains.decision_tree import DecisionTree
from ..domains.ellipsoid import EllipsoidParams, EllipsoidValue
from ..domains.octagon import Octagon
from ..domains.values import CellValue
from ..frontend.ir import IRProgram
from ..memory.cells import CellTable
from ..memory.environment import MemoryEnv
from ..memory.fmap import PMap
from ..numeric import BINARY32, BINARY64, FloatInterval, IntInterval
from ..packing.boolean_packs import BoolPacking
from ..packing.ellipsoid_sites import FilterSites
from ..packing.octagon_packs import OctagonPacking

__all__ = ["AnalysisContext", "AbstractState", "LatticeMemo",
           "set_active_context", "get_active_context"]

# Process-wide context registry (parallel engine and checkpoint/resume
# support).  Pickled AbstractStates carry domain content only; the heavy
# AnalysisContext is installed once per process and re-attached during
# unpickling — workers install it in their initializer, and
# supervisor.checkpoint.load_checkpoint requires it before restoring.
_ACTIVE_CONTEXT: Optional["AnalysisContext"] = None


def set_active_context(ctx: Optional["AnalysisContext"]) -> None:
    global _ACTIVE_CONTEXT
    _ACTIVE_CONTEXT = ctx


def get_active_context() -> Optional["AnalysisContext"]:
    return _ACTIVE_CONTEXT


def _rebuild_state(env, octagons, dtrees, ellipsoids):
    ctx = _ACTIVE_CONTEXT
    if ctx is None:
        raise RuntimeError(
            "unpickling an AbstractState requires set_active_context() "
            "to have installed the AnalysisContext in this process")
    return AbstractState(ctx, env, octagons, dtrees, ellipsoids)


class LatticeMemo:
    """Bounded LRU memo for the binary lattice operations on
    :class:`AbstractState` (join/widen/includes).

    Keys are built from the *physical identities* of the operands'
    component roots (plus the value-compared clock and bottom flags):
    states are immutable, so two operands with identical roots are the
    same lattice elements, and the operations are pure functions of
    their operands (given a fixed configuration) — a memoized result is
    exactly what recomputation would return.  Entries hold strong
    references to both operands, so the ids in a live key can never be
    reused by the allocator; evicting an entry drops the key and the
    references together.

    The memo must be flushed whenever the effective configuration
    changes (the supervisor's degradation ladder mutates thresholds and
    domain-enable flags in place): ``AnalysisContext.
    invalidate_derived_caches`` does this alongside bumping the
    config generation the incremental executors check.
    """

    __slots__ = ("maxsize", "hits", "misses", "_entries")

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        # key -> (state_a, state_b, result); insertion order is LRU.
        self._entries: "OrderedDict" = OrderedDict()

    def __reduce__(self):
        # Memo contents are identity-keyed and therefore meaningless in
        # another process: pickle to a fresh, empty memo.
        return (LatticeMemo, (self.maxsize,))

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    @staticmethod
    def state_key(st: "AbstractState"):
        env = st.env
        return (env.bottom, id(env.cells._root), env.clock,
                id(st.octagons._root), id(st.dtrees._root),
                id(st.ellipsoids._root))

    def lookup(self, key):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key, a, b, result) -> None:
        entries = self._entries
        entries[key] = (a, b, result)
        if len(entries) > self.maxsize:
            entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class AnalysisContext:
    """Immutable-per-analysis shared data plus mutable statistics."""

    prog: IRProgram
    config: AnalyzerConfig
    table: CellTable
    oct_packs: OctagonPacking
    bool_packs: BoolPacking
    filter_sites: FilterSites
    # Mutable usefulness records (Sect. 7.2.2).
    useful_oct_packs: Set[int] = field(default_factory=set)
    useful_bool_packs: Set[int] = field(default_factory=set)
    # Bounded memo for join/widen/includes (sized by config in
    # analyze_program; see LatticeMemo).
    lattice_memo: LatticeMemo = field(default_factory=LatticeMemo)
    # Bumped whenever the effective configuration mutates mid-run (the
    # degradation ladder); identity-keyed caches (the lattice memo, the
    # incremental executors' footprints and records) revalidate on it.
    config_generation: int = 0
    # Wall time spent inside AbstractState lattice ops (join/widen/
    # narrow/includes) — the lattice half of the transfer-vs-lattice
    # phase split reported by --profile-phases.
    lattice_seconds: float = 0.0

    def invalidate_derived_caches(self) -> None:
        """Mid-run configuration change: flush every cache whose keys or
        results depend on the configuration."""
        self.config_generation += 1
        self.lattice_memo.clear()

    def thresholds(self) -> Optional[Sequence[float]]:
        ts = self.config.thresholds
        return ts.values if ts is not None else None

    def site_params(self, site_id: int, t_max: float) -> EllipsoidParams:
        site = self.filter_sites.site(site_id)
        fmt = BINARY32 if site.fmt_name == "binary32" else BINARY64
        return EllipsoidParams(site.a, site.b, t_max, fmt)


class AbstractState:
    """One abstract element of the combined domain."""

    __slots__ = ("ctx", "env", "octagons", "dtrees", "ellipsoids")

    def __init__(self, ctx: AnalysisContext, env: MemoryEnv,
                 octagons: PMap, dtrees: PMap, ellipsoids: PMap):
        self.ctx = ctx
        self.env = env
        self.octagons = octagons      # pack_id -> Octagon
        self.dtrees = dtrees          # pack_id -> DecisionTree
        self.ellipsoids = ellipsoids  # site_id -> float k (inf = top)

    def __reduce__(self):
        # The context never crosses the process boundary with the state:
        # workers re-attach their own installed copy (see _rebuild_state).
        return (_rebuild_state,
                (self.env, self.octagons, self.dtrees, self.ellipsoids))

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def initial(ctx: AnalysisContext) -> "AbstractState":
        env = MemoryEnv.initial(ctx.config.max_clock)
        octs = PMap.empty()
        if ctx.config.enable_octagons:
            for p in ctx.oct_packs.packs:
                octs = octs.set(p.pack_id, Octagon.top(p.size))
        trees = PMap.empty()
        if ctx.config.enable_decision_trees:
            for p in ctx.bool_packs.packs:
                trees = trees.set(p.pack_id,
                                  DecisionTree.top(p.bool_cids, p.numeric_cids))
        ells = PMap.empty()
        if ctx.config.enable_ellipsoids:
            for s in ctx.filter_sites.sites:
                ells = ells.set(s.site_id, math.inf)
        return AbstractState(ctx, env, octs, trees, ells)

    def _with(self, env: Optional[MemoryEnv] = None, octagons: Optional[PMap] = None,
              dtrees: Optional[PMap] = None,
              ellipsoids: Optional[PMap] = None) -> "AbstractState":
        return AbstractState(
            self.ctx,
            env if env is not None else self.env,
            octagons if octagons is not None else self.octagons,
            dtrees if dtrees is not None else self.dtrees,
            ellipsoids if ellipsoids is not None else self.ellipsoids,
        )

    @property
    def is_bottom(self) -> bool:
        return self.env.is_bottom

    def to_bottom(self) -> "AbstractState":
        return self._with(env=self.env.to_bottom())

    # -- cell access (with reduction) -----------------------------------------------

    def cell_value(self, cid: int) -> Optional[CellValue]:
        return self.env.get(cid)

    def cell_float_range(self, cid: int) -> FloatInterval:
        """Float-interval view of a cell (used by linear forms/octagons)."""
        v = self.env.get(cid)
        if v is None:
            from ..domains.values import top_value

            return top_value(self.ctx.table.cell(cid).ctype).float_range()
        return v.float_range()

    def set_cell(self, cid: int, value: CellValue) -> "AbstractState":
        return self._with(env=self.env.set(cid, value))

    def weak_set_cell(self, cid: int, value: CellValue) -> "AbstractState":
        return self._with(env=self.env.weak_set(cid, value))

    # -- ellipsoid helpers -------------------------------------------------------------

    def _reduce_ellipsoid_from_box(self, site_id: int) -> float:
        """Interval-based bound on the quadratic form of a top ellipsoid."""
        site = self.ctx.filter_sites.site(site_id)
        x_iv = self.cell_float_range(site.x_cid)
        y_iv = self.cell_float_range(site.y_cid)
        params = self.ctx.site_params(site_id, 0.0)
        v = EllipsoidValue.top(params).reduce_from_intervals(x_iv, y_iv)
        return v.k

    def _ellipsoids_pre_reduced(self, other: "AbstractState") -> Tuple[PMap, PMap]:
        """Apply the paper's pre-join/pre-widening reduction: a top k on one
        side is refined from that side's intervals when the other side is
        finite."""
        a, b = self.ellipsoids, other.ellipsoids
        for site_id, ka in list(a.items()):
            kb = b.get(site_id, math.inf)
            if math.isinf(ka) and not math.isinf(kb):
                a = a.set(site_id, self._reduce_ellipsoid_from_box(site_id))
            elif math.isinf(kb) and not math.isinf(ka):
                b = b.set(site_id, other._reduce_ellipsoid_from_box(site_id))
        return a, b

    # -- lattice -----------------------------------------------------------------------
    #
    # The public join/widen/includes route through a bounded LRU memo
    # keyed on the operands' component-root identities (see LatticeMemo)
    # and accumulate wall time into ctx.lattice_seconds for the
    # transfer-vs-lattice profile split.  The *_impl methods hold the
    # actual domain logic and are pure functions of (operands, config),
    # which is what makes the memoization sound.

    def join(self, other: "AbstractState") -> "AbstractState":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        memo = self.ctx.lattice_memo
        t0 = time.perf_counter()
        try:
            if not memo.enabled:
                return self._join_impl(other)
            key = ("join", LatticeMemo.state_key(self),
                   LatticeMemo.state_key(other))
            entry = memo.lookup(key)
            if entry is not None:
                return entry[2]
            res = self._join_impl(other)
            memo.store(key, self, other, res)
            return res
        finally:
            self.ctx.lattice_seconds += time.perf_counter() - t0

    def _join_impl(self, other: "AbstractState") -> "AbstractState":
        ea, eb = self._ellipsoids_pre_reduced(other)
        return AbstractState(
            self.ctx,
            self.env.join(other.env),
            self.octagons.merge(other.octagons,
                                lambda k, a, b: a if a is b else a.join(b),
                                missing_self=lambda k, b: b,
                                missing_other=lambda k, a: a),
            self.dtrees.merge(other.dtrees,
                              lambda k, a, b: a if a is b else a.join(b),
                              missing_self=lambda k, b: b,
                              missing_other=lambda k, a: a),
            ea.merge(eb, lambda k, x, y: max(x, y),
                     missing_self=lambda k, y: y,
                     missing_other=lambda k, x: x),
        )

    def widen(self, other: "AbstractState",
              frozen_cids: Optional[set] = None) -> "AbstractState":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        memo = self.ctx.lattice_memo
        t0 = time.perf_counter()
        try:
            # frozen_cids (delayed widening) is per-iteration context the
            # identity key cannot capture: only the plain form memoizes.
            if not memo.enabled or frozen_cids is not None:
                return self._widen_impl(other, frozen_cids)
            key = ("widen", LatticeMemo.state_key(self),
                   LatticeMemo.state_key(other))
            entry = memo.lookup(key)
            if entry is not None:
                return entry[2]
            res = self._widen_impl(other, None)
            memo.store(key, self, other, res)
            return res
        finally:
            self.ctx.lattice_seconds += time.perf_counter() - t0

    def _widen_impl(self, other: "AbstractState",
                    frozen_cids: Optional[set]) -> "AbstractState":
        ts = self.ctx.thresholds()
        ea, eb = self._ellipsoids_pre_reduced(other)

        def widen_k(k, a, b):
            if b <= a:
                return a
            if ts is None:
                return math.inf
            for t in ts:
                if t >= b:
                    return t
            return math.inf

        return AbstractState(
            self.ctx,
            self.env.widen(other.env, ts, frozen_cids),
            self.octagons.merge(other.octagons,
                                lambda k, a, b: a if a is b else a.widen(b, ts),
                                missing_self=lambda k, b: b,
                                missing_other=lambda k, a: a),
            self.dtrees.merge(other.dtrees,
                              lambda k, a, b: a if a is b else a.widen(b, ts),
                              missing_self=lambda k, b: b,
                              missing_other=lambda k, a: a),
            ea.merge(eb, widen_k,
                     missing_self=lambda k, y: y,
                     missing_other=lambda k, x: x),
        )

    def narrow(self, other: "AbstractState") -> "AbstractState":
        if self.is_bottom or other.is_bottom:
            return other
        t0 = time.perf_counter()
        try:
            return self._narrow_impl(other)
        finally:
            self.ctx.lattice_seconds += time.perf_counter() - t0

    def _narrow_impl(self, other: "AbstractState") -> "AbstractState":
        return AbstractState(
            self.ctx,
            self.env.narrow(other.env),
            self.octagons.merge(other.octagons,
                                lambda k, a, b: a if a is b else a.narrow(b),
                                missing_self=lambda k, b: b,
                                missing_other=lambda k, a: a),
            self.dtrees.merge(other.dtrees,
                              lambda k, a, b: a if a is b else a.narrow(b),
                              missing_self=lambda k, b: b,
                              missing_other=lambda k, a: a),
            self.ellipsoids.merge(other.ellipsoids,
                                  lambda k, a, b: b if math.isinf(a) else a,
                                  missing_self=lambda k, y: y,
                                  missing_other=lambda k, x: x),
        )

    def meet_env(self, env: MemoryEnv) -> "AbstractState":
        return self._with(env=self.env.meet(env))

    def includes(self, other: "AbstractState") -> bool:
        if other.is_bottom:
            return True
        if self.is_bottom:
            return False
        memo = self.ctx.lattice_memo
        t0 = time.perf_counter()
        try:
            if not memo.enabled:
                return self._includes_impl(other)
            key = ("incl", LatticeMemo.state_key(self),
                   LatticeMemo.state_key(other))
            entry = memo.lookup(key)
            if entry is not None:
                return entry[2]
            res = self._includes_impl(other)
            memo.store(key, self, other, res)
            return res
        finally:
            self.ctx.lattice_seconds += time.perf_counter() - t0

    def _includes_impl(self, other: "AbstractState") -> bool:
        if not self.env.includes(other.env):
            return False
        for pack_id in self.octagons.diff_keys(other.octagons):
            mine = self.octagons.get(pack_id)
            theirs = other.octagons.get(pack_id)
            if mine is not None and theirs is not None and not mine.includes(theirs):
                return False
        for pack_id in self.dtrees.diff_keys(other.dtrees):
            mine = self.dtrees.get(pack_id)
            theirs = other.dtrees.get(pack_id)
            if mine is not None and theirs is not None and not mine.includes(theirs):
                return False
        for site_id in self.ellipsoids.diff_keys(other.ellipsoids):
            ka = self.ellipsoids.get(site_id, math.inf)
            kb = other.ellipsoids.get(site_id, math.inf)
            if ka < kb:
                return False
        return True

    # -- domain reductions -----------------------------------------------------------

    def reduce_cell_from_relational(self, cid: int) -> "AbstractState":
        """Tighten a cell's interval using octagons and decision trees.

        Records pack usefulness when a strict tightening happens
        (Sect. 7.2.2: "Our analyzer outputs, as part of the result, whether
        each octagon actually improved the precision of the analysis").
        """
        state = self
        v = state.env.get(cid)
        if v is None or v.is_bottom:
            return state
        cell = state.ctx.table.cell(cid)
        # Octagon reduction.
        if state.ctx.config.enable_octagons:
            for pack_id in state.ctx.oct_packs.packs_of_cell(cid):
                oct_ = state.octagons.get(pack_id)
                if oct_ is None or oct_.is_bottom:
                    continue
                pack = state.ctx.oct_packs.pack(pack_id)
                pos = pack.index_of()[cid]
                bound = oct_.var_interval(pos)
                if bound.is_top:
                    continue
                state = state._meet_cell_float(cid, bound, pack_id, kind="oct")
                v = state.env.get(cid)
                if v is None or v.is_bottom:
                    return state
        # Decision-tree reduction (join over reachable valuations).
        if state.ctx.config.enable_decision_trees:
            for pack_id in state.ctx.bool_packs.packs_of_numeric(cid):
                tree = state.dtrees.get(pack_id)
                if tree is None:
                    continue
                facts = tree.numeric_refinement()
                if cid in facts:
                    state = state._meet_cell_interval(cid, facts[cid], pack_id,
                                                      kind="tree")
        return state

    def _meet_cell_float(self, cid: int, bound: FloatInterval, pack_id: int,
                         kind: str) -> "AbstractState":
        v = self.env.get(cid)
        if v is None:
            return self
        if v.is_float:
            new_itv = v.itv.meet(bound)
            changed = new_itv != v.itv
            new_v = CellValue(new_itv, v.minus_clock, v.plus_clock)
        else:
            as_int = IntInterval.from_float_interval(bound)
            new_itv = v.itv.meet(as_int)
            changed = new_itv != v.itv
            new_v = CellValue(new_itv, v.minus_clock, v.plus_clock)
        if not changed:
            return self
        self._mark_useful(pack_id, kind)
        if new_v.is_bottom:
            # A relational contradiction: the state is unreachable.
            return self.to_bottom()
        return self._with(env=self.env.set(cid, new_v))

    def _meet_cell_interval(self, cid: int, bound, pack_id: int,
                            kind: str) -> "AbstractState":
        v = self.env.get(cid)
        if v is None:
            return self
        if isinstance(bound, FloatInterval) and not v.is_float:
            return self._meet_cell_float(cid, bound, pack_id, kind)
        if isinstance(bound, IntInterval) and v.is_float:
            bound = bound.to_float_interval()
        new_itv = v.itv.meet(bound)
        if new_itv == v.itv:
            return self
        self._mark_useful(pack_id, kind)
        new_v = CellValue(new_itv, v.minus_clock, v.plus_clock)
        if new_v.is_bottom:
            return self.to_bottom()
        return self._with(env=self.env.set(cid, new_v))

    def _mark_useful(self, pack_id: int, kind: str) -> None:
        if kind == "oct":
            self.ctx.useful_oct_packs.add(pack_id)
        else:
            self.ctx.useful_bool_packs.add(pack_id)

    def octagon_eval(self, form) -> Tuple[FloatInterval, Tuple[int, ...]]:
        """Evaluate a linear form against the octagons (Sect. 6.2.2).

        When the form is ``±v_i ∓ v_j + rest`` with unit coefficients and
        both variables in one pack, the pack's sum/difference bound refines
        the plain interval evaluation — this is how the discovered
        ``c <= L - Z <= d`` facts reach later expressions.
        Returns (top, ()) when no octagonal refinement applies; otherwise
        the bound plus the contributing pack ids (so the caller can record
        pack usefulness only when the bound actually tightens something).
        """
        if not self.ctx.config.enable_octagons or self.is_bottom:
            return FloatInterval.top(), ()
        units = []
        rest = form.const
        for cid, coeff in form.coeffs:
            if coeff.is_const and coeff.lo in (1.0, -1.0):
                units.append((cid, int(coeff.lo)))
            else:
                rest = rest.add(coeff.mul(self.cell_float_range(cid)))
        if len(units) != 2:
            return FloatInterval.top(), ()
        (ci, si), (cj, sj) = units
        best = FloatInterval.top()
        contributors = []
        shared = set(self.ctx.oct_packs.packs_of_cell(ci)) & \
            set(self.ctx.oct_packs.packs_of_cell(cj))
        for pack_id in shared:
            oct_ = self.octagons.get(pack_id)
            if oct_ is None or oct_.is_bottom or oct_.is_top:
                continue
            index = self.ctx.oct_packs.pack(pack_id).index_of()
            pi, pj = index[ci], index[cj]
            if si == 1 and sj == 1:
                b = oct_.sum_bound(pi, pj)
            elif si == 1 and sj == -1:
                b = oct_.diff_bound(pi, pj)
            elif si == -1 and sj == 1:
                b = oct_.diff_bound(pj, pi)
            else:
                b = oct_.sum_bound(pi, pj).neg()
            if not b.is_top:
                contributors.append(pack_id)
                best = best.meet(b)
        if best.is_top or rest.is_empty:
            return FloatInterval.top(), ()
        return best.add(rest), tuple(contributors)

    def propagate_octagon_pivots(self, pack_id: int) -> "AbstractState":
        """Inter-octagon reduction through shared variable pairs
        (Sect. 7.2.1's optional pivot propagation).

        Constraints on pairs of variables shared between ``pack_id`` and
        another pack are copied into the other pack's octagon.
        """
        src_pack = self.ctx.oct_packs.pack(pack_id)
        src_oct = self.octagons.get(pack_id)
        if src_oct is None or src_oct.is_bottom or src_oct.is_top:
            return self
        src_index = src_pack.index_of()
        state = self
        neighbours = set()
        for cid in src_pack.cids:
            neighbours.update(self.ctx.oct_packs.packs_of_cell(cid))
        neighbours.discard(pack_id)
        octs = state.octagons
        changed = False
        for other_id in neighbours:
            other_pack = self.ctx.oct_packs.pack(other_id)
            shared = [cid for cid in other_pack.cids if cid in src_index]
            if len(shared) < 2:
                continue
            other_oct = octs.get(other_id)
            if other_oct is None or other_oct.is_bottom:
                continue
            other_index = other_pack.index_of()
            out = other_oct
            for i in range(len(shared)):
                for j in range(i + 1, len(shared)):
                    ci, cj = shared[i], shared[j]
                    si, sj = src_index[ci], src_index[cj]
                    oi, oj = other_index[ci], other_index[cj]
                    s = src_oct.sum_bound(si, sj)
                    d = src_oct.diff_bound(si, sj)
                    if s.hi < math.inf:
                        out = out.guard_upper({oi: 1, oj: 1}, s.hi)
                    if s.lo > -math.inf:
                        out = out.guard_upper({oi: -1, oj: -1}, -s.lo)
                    if d.hi < math.inf:
                        out = out.guard_upper({oi: 1, oj: -1}, d.hi)
                    if d.lo > -math.inf:
                        out = out.guard_upper({oi: -1, oj: 1}, -d.lo)
            if out.is_bottom:
                return state.to_bottom()
            if out is not other_oct:
                octs = octs.set(other_id, out)
                changed = True
        if changed:
            return state._with(octagons=octs)
        return state

    # -- iteration-perturbation (Sect. 7.1.4) ---------------------------------------------

    def inflate_floats(self, eps: float, cids) -> "AbstractState":
        """F-hat: inflate float cell bounds by a relative eps so the
        stabilization check is not defeated by abstract rounding noise."""
        if eps <= 0.0 or self.is_bottom:
            return self
        env = self.env
        for cid in cids:
            v = env.get(cid)
            if v is None or not v.is_float or v.is_bottom:
                continue
            iv = v.itv
            lo = iv.lo - eps * abs(iv.lo) if iv.lo > -math.inf else iv.lo
            hi = iv.hi + eps * abs(iv.hi) if iv.hi < math.inf else iv.hi
            if lo != iv.lo or hi != iv.hi:
                env = env.set(cid, CellValue(FloatInterval.of(lo, hi),
                                             v.minus_clock, v.plus_clock))
        if env is self.env:
            return self
        return self._with(env=env)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_bottom:
            return "AbstractState(bottom)"
        return (f"AbstractState(env={self.env!r}, octs={len(self.octagons)}, "
                f"trees={len(self.dtrees)}, ells={len(self.ellipsoids)})")
