"""Incremental fixpoint iteration: dependency-sliced body re-execution.

Widening sequences converge cell-by-cell: after the first few iterations
of a loop fixpoint most of the abstract state is already stable, yet the
classical iterator re-executes the *whole* loop body on every iteration.
This module re-executes only the statements that can possibly produce a
different post-state than last time, splicing the memoized post-states
of the rest — bit-identical to full re-execution, by construction.

The engine hooks :meth:`Iterator.exec_block`: while a fixpoint body run
is in progress (``Iterator._incr_active``), every statement sequence —
the loop body itself, branch bodies, called function bodies, nested loop
bodies — executes through a cached :class:`IncrementalSequenceExecutor`.
The granularity is therefore *per statement at every nesting level*: a
module call whose footprint intersects the changed cells re-executes,
but inside it only the statements whose own slices changed re-execute.

Soundness argument (see docs/architecture.md, "Incremental iteration and
sharing"):

* Every statement gets a static read/write footprint from
  :class:`~repro.parallel.footprints.FootprintAnalyzer` — the same sound
  over-approximation the parallel engine uses for conflict detection.
  The footprint includes refinement writes of guards, reduction writes
  of packed reads, and weak-update reads.
* A statement is *skipped* only when its incoming state agrees with the
  recorded pre-state of its last full execution on every cell, octagon
  pack, decision-tree pack and filter site of ``reads ∪ writes``, and on
  the clock.  Abstract transfer functions are functions of exactly that
  slice of the state, so the recorded post-state *is* the post-state the
  statement would recompute.
* The recorded post is spliced by patching the footprint's write sets
  onto the incoming state.  Because the write set over-approximates
  everything the statement may change, and the statement's effect on
  those components is fixed by the agreeing slice, patching is exact —
  not an approximation.
* Agreement compares abstract values with ``==`` (with ``is`` fast
  paths).  The analyzer already treats ``==``-equal values as
  interchangeable everywhere (cell-wise merges return ``a`` when
  ``a == b``), so substituting one for the other cannot change any
  downstream result.  ``NaN != NaN`` merely makes skips conservative.
* Statements whose footprint is unresolved, or that may break /
  continue / return / tick the clock, are never recorded: they always
  re-execute, and their non-normal continuations flow exactly as in
  :meth:`Iterator.exec_block`.
* ``_incr_active`` is only set inside ``_loop_fixpoint_inner``, where
  ``alarms.checking`` is False, so skipping can never lose an alarm;
  the final checking pass over the invariant always executes in full.

Executors are cached per ``(sequence identity, byref bindings)`` — the
same binding key the parallel engine uses — and hold a strong reference
to their statement list so the id stays valid.  The caches are
invalidated wholesale when the supervisor's degradation ladder mutates
the configuration (``AnalysisContext.config_generation``).

Cross-run extension (repro.serve.cache): when the iterator carries a
``cross_run`` cache, each skippable statement is additionally keyed by
a content fingerprint (statement text, transitively called bodies,
bindings, resolved footprint — repro.serve.fingerprints) and

* *journals* its deduplicated (pre, post) occurrence sequence for the
  next run, and
* consults the *donor* journal of the previous run with the same
  compat fingerprint: around a per-statement trajectory cursor, donor
  pres are checked with exactly the agreement test below, and on
  agreement the donor post is spliced exactly like an intra-run record.

The donor pair being a true (pre, post) pair of the same transfer
function (content key + compat fingerprint) makes the splice exact by
the same argument as above — so a warm run is bit-identical to a cold
one even across daemon restarts.  Divergence is self-limiting: a
statement whose donor pairs stop agreeing (an edited slice, a shifted
trajectory) drops its donor after a few failed probes and falls back to
pure intra-run behavior.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..frontend import ir as I
from .iterator import Flow, _join_opt, _join_opt_val
from .state import AbstractState

__all__ = ["IncrementalSequenceExecutor", "frames_key", "slim_pair"]

# Donor trajectory probing: how many pairs past the cursor one
# occurrence may test, and how many consecutive occurrences may fail
# before the statement's donor is dropped for the rest of the run.
_DONOR_WINDOW = 8
_DONOR_MAX_FAILS = 4


class _DonorCursor:
    """Replay state of one statement's donor journal: the deduplicated
    (pre, post) sequence of the donor run, a cursor tracking where the
    current run's trajectory last aligned, and a failure budget."""

    __slots__ = ("pairs", "pos", "fails")

    def __init__(self, pairs):
        self.pairs = pairs
        self.pos = 0
        self.fails = 0


def slim_pair(m: "_StmtMeta", pre: AbstractState,
              post: AbstractState) -> Tuple:
    """The footprint slice of one (pre, post) record — what cross-run
    journals store instead of whole states.  The agreement check only
    ever reads the pre-state's footprint components and the patch only
    the post-state's write sets, so nothing else needs to survive the
    round-trip; the component values (CellValue, Octagon, DecisionTree,
    floats) are context-free and pickle small."""
    ep = pre.env
    pf = ep.cells.find
    of, tf, ef = pre.octagons.find, pre.dtrees.find, pre.ellipsoids.find
    qf = post.env.cells.find
    og, tg, eg = post.octagons.find, post.dtrees.find, post.ellipsoids.find
    return (
        ep.clock if m.clock_dep else None,
        tuple(pf(c) for c in m.cells),
        tuple(of(p) for p in m.packs),
        tuple(tf(p) for p in m.bpacks),
        tuple(ef(s) for s in m.sites),
        tuple(qf(c) for c in m.write_cells),
        tuple(og(p) for p in m.write_packs),
        tuple(tg(p) for p in m.write_bpacks),
        tuple(eg(s) for s in m.sites),
    )


def frames_key(frames) -> Tuple:
    """Hashable key of the call-by-reference binding stack (footprints
    are resolved against these bindings, so they are part of the cache
    identity)."""
    return tuple(
        tuple(sorted((uid, repr(lv)) for uid, lv in frame.items()))
        for frame in frames)


class _StmtMeta:
    """Per-statement footprint slice plus the memoized last execution."""

    __slots__ = ("stmt", "skippable", "clock_dep", "cells", "write_cells",
                 "packs", "write_packs", "bpacks", "write_bpacks", "sites",
                 "span", "record", "xkey", "donor")

    def __init__(self, stmt: I.Stmt, fp, ctx):
        self.stmt = stmt
        # Never memoize statements whose effects escape the normal
        # continuation or that the footprint analysis could not resolve.
        # A clock tick (wait) writes every clocked cell at once, and
        # break/continue/return produce non-normal flows the splice
        # cannot reproduce.
        self.skippable = not (fp.unresolved or fp.may_break
                              or fp.may_continue or fp.may_return
                              or fp.has_wait)
        self.cells = tuple(sorted(fp.reads | fp.writes))
        self.write_cells = tuple(sorted(fp.writes))
        # Clock dependence: only integer cells carry clocked components
        # (with_clock_tracking / read-time clock reduction), so a
        # statement whose slice is float-only never observes the clock —
        # its agreement check may ignore clock inequality.  The clock
        # itself only advances through waits (has_wait excludes those).
        table = ctx.table
        self.clock_dep = (ctx.config.enable_clock
                          and any(table.cell(cid).is_integer
                                  for cid in self.cells))
        self.packs = tuple(sorted(fp.read_packs | fp.write_packs))
        self.write_packs = tuple(sorted(fp.write_packs))
        self.bpacks = tuple(sorted(fp.read_bpacks | fp.write_bpacks))
        self.write_bpacks = tuple(sorted(fp.write_bpacks))
        self.sites = tuple(sorted(fp.sites))
        # Work estimate of one execution (footprint weight counts the
        # whole subtree, called bodies included, loop bodies scaled up);
        # credited to stmts_skipped when the statement is spliced.
        self.span = max(1, fp.weight)
        # (pre_state, post_state) of the last full execution, or None.
        self.record: Optional[Tuple[AbstractState, AbstractState]] = None
        # Cross-run journal key and donor cursor (set by the executor
        # when a CrossRunCache is attached; None otherwise).
        self.xkey: Optional[str] = None
        self.donor: Optional[_DonorCursor] = None


class IncrementalSequenceExecutor:
    """Executes one statement sequence, skipping statements whose
    footprint slice of the state is unchanged since their last
    execution.  One instance per (sequence, bindings) pair, cached on
    the Iterator; records persist across fixpoint iterations."""

    __slots__ = ("stmts", "generation", "metas")

    def __init__(self, it, stmts):
        self.stmts = stmts  # strong ref: keeps id(stmts) valid
        self.generation = it.ctx.config_generation
        fa = it._footprint_analyzer()
        frames = tuple(it.tr.bindings)
        self.metas = [
            _StmtMeta(st, fa.stmt_footprint(st, frames), it.ctx)
            for st in stmts]
        cr = getattr(it, "cross_run", None)
        if cr is not None and cr.active_for(it):
            fr = frames_key(frames)
            for m in self.metas:
                if not m.skippable:
                    continue
                m.xkey = cr.stmt_key(m, fr)
                pairs = cr.donor_pairs(m.xkey)
                if pairs:
                    m.donor = _DonorCursor(pairs)
                    cr.seeded += 1

    def exec(self, it, state: AbstractState) -> Flow:
        # The plain sequential fold of Iterator.exec_block (this executor
        # is only active when trace/loop partitioning is off).
        flow = Flow(normal=state)
        for m in self.metas:
            if flow.normal.is_bottom:
                break
            sub = self._exec_one(it, flow.normal, m)
            flow = Flow(
                normal=sub.normal,
                brk=_join_opt(flow.brk, sub.brk),
                cont=_join_opt(flow.cont, sub.cont),
                ret=_join_opt(flow.ret, sub.ret),
                ret_val=_join_opt_val(flow.ret_val, sub.ret_val),
            )
        return flow

    def _exec_one(self, it, cur: AbstractState, m: _StmtMeta) -> Flow:
        rec = m.record
        if rec is not None and self._agrees(cur, rec[0], m):
            it.stmts_skipped += m.span
            if cur is rec[0]:
                self._journal(it, m, cur, rec[1])
                return Flow(normal=rec[1])
            post = self._patch(cur, rec[1], m)
            m.record = (cur, post)
            self._journal(it, m, cur, post)
            return Flow(normal=post)
        d = m.donor
        if d is not None:
            pairs = d.pairs
            end = min(d.pos + _DONOR_WINDOW, len(pairs))
            for j in range(d.pos, end):
                pair = pairs[j]
                if self._agrees_slim(cur, pair, m):
                    d.pos = j
                    d.fails = 0
                    it.stmts_skipped += m.span
                    it.cross_run_hits += 1
                    it.cross_run_spliced += m.span
                    post = self._patch_slim(cur, pair, m)
                    m.record = (cur, post)
                    self._journal(it, m, cur, post)
                    return Flow(normal=post)
            d.fails += 1
            if d.fails >= _DONOR_MAX_FAILS:
                m.donor = None
        sub = it.exec_stmt(cur, m.stmt)
        if (m.skippable and sub.brk is None and sub.cont is None
                and sub.ret is None and not sub.normal.is_bottom):
            # Bottom posts are excluded: to_bottom() keeps stale
            # relational maps that the splice must not resurrect.
            m.record = (cur, sub.normal)
            self._journal(it, m, cur, sub.normal)
        else:
            m.record = None
        return sub

    @staticmethod
    def _journal(it, m: _StmtMeta, pre: AbstractState,
                 post: AbstractState) -> None:
        cr = it.cross_run
        if cr is not None and m.xkey is not None:
            cr.record(m.xkey, m, pre, post)

    # -- the agreement check -----------------------------------------------------

    @staticmethod
    def _agrees(cur: AbstractState, pre: AbstractState,
                m: _StmtMeta) -> bool:
        """True iff ``cur`` and ``pre`` coincide on the statement's
        footprint slice — cells, packs, tree packs, filter sites — and on
        the clock.  ``is`` fast paths first; ``==`` decides the rest."""
        if cur is pre:
            return True
        ec, ep = cur.env, pre.env
        if ec.bottom or ep.bottom:
            return False
        if m.clock_dep and ec.clock != ep.clock:
            return False
        if ec.cells._root is not ep.cells._root:
            cfind, pfind = ec.cells.find, ep.cells.find
            for cid in m.cells:
                a, b = cfind(cid), pfind(cid)
                if a is b:
                    continue
                if a is None or b is None or a != b:
                    return False
        if cur.octagons._root is not pre.octagons._root:
            cfind, pfind = cur.octagons.find, pre.octagons.find
            for pid in m.packs:
                a, b = cfind(pid), pfind(pid)
                if a is b:
                    continue
                # raw_equal: representation equality without the cubic
                # closure .equal() would run — sufficient, so at worst
                # the skip is conservatively refused.
                if a is None or b is None or not a.raw_equal(b):
                    return False
        if cur.dtrees._root is not pre.dtrees._root:
            cfind, pfind = cur.dtrees.find, pre.dtrees.find
            for pid in m.bpacks:
                a, b = cfind(pid), pfind(pid)
                if a is b:
                    continue
                if a is None or b is None or not a.equal(b):
                    return False
        if cur.ellipsoids._root is not pre.ellipsoids._root:
            cfind, pfind = cur.ellipsoids.find, pre.ellipsoids.find
            for sid in m.sites:
                a, b = cfind(sid), pfind(sid)
                if a is b:
                    continue
                # Floats: inf == inf holds; NaN != NaN conservatively
                # refuses the skip.
                if a is None or b is None or a != b:
                    return False
        return True

    @staticmethod
    def _agrees_slim(cur: AbstractState, pair: Tuple,
                     m: _StmtMeta) -> bool:
        """The agreement check of :meth:`_agrees` against a slim donor
        pair (see :func:`slim_pair`) instead of a recorded pre-state.
        Same comparisons component-wise, so the same exactness argument
        applies; the ``is`` fast paths simply never fire for unpickled
        values."""
        clock, cells, packs, bpacks, sites = pair[0], pair[1], pair[2], \
            pair[3], pair[4]
        ec = cur.env
        if ec.bottom:
            return False
        if m.clock_dep and ec.clock != clock:
            return False
        cfind = ec.cells.find
        for cid, b in zip(m.cells, cells):
            a = cfind(cid)
            if a is b:
                continue
            if a is None or b is None or a != b:
                return False
        ofind = cur.octagons.find
        for pid, b in zip(m.packs, packs):
            a = ofind(pid)
            if a is b:
                continue
            if a is None or b is None or not a.raw_equal(b):
                return False
        tfind = cur.dtrees.find
        for pid, b in zip(m.bpacks, bpacks):
            a = tfind(pid)
            if a is b:
                continue
            if a is None or b is None or not a.equal(b):
                return False
        efind = cur.ellipsoids.find
        for sid, b in zip(m.sites, sites):
            a = efind(sid)
            if a is b:
                continue
            if a is None or b is None or a != b:
                return False
        return True

    # -- the splice --------------------------------------------------------------

    @staticmethod
    def _patch_slim(cur: AbstractState, pair: Tuple,
                    m: _StmtMeta) -> AbstractState:
        """:meth:`_patch` against a slim donor pair: graft the recorded
        write-set values onto ``cur``, leaving ``==``-equal components
        physically in place (the incoming run's sharing identities are
        worth more than the donor's unpickled copies)."""
        wcells, wpacks, wbpacks, wsites = pair[5], pair[6], pair[7], pair[8]
        cells = cur.env.cells
        for cid, v in zip(m.write_cells, wcells):
            if v is None:
                cells = cells.remove(cid)
                continue
            old = cells.find(cid)
            if old is v or (old is not None and old == v):
                continue
            cells = cells.set(cid, v)
        env = cur.env
        if cells is not env.cells:
            env = type(env)(cells, env.clock)

        octs = cur.octagons
        for pid, v in zip(m.write_packs, wpacks):
            if v is None:
                octs = octs.remove(pid)
                continue
            old = octs.find(pid)
            if old is v or (old is not None and old.raw_equal(v)):
                continue
            octs = octs.set(pid, v)

        trees = cur.dtrees
        for pid, v in zip(m.write_bpacks, wbpacks):
            if v is None:
                trees = trees.remove(pid)
                continue
            old = trees.find(pid)
            if old is v or (old is not None and old.equal(v)):
                continue
            trees = trees.set(pid, v)

        ells = cur.ellipsoids
        for sid, v in zip(m.sites, wsites):
            if v is None:
                ells = ells.remove(sid)
                continue
            old = ells.find(sid)
            if old is v or (old is not None and old == v):
                continue
            ells = ells.set(sid, v)

        if (env is cur.env and octs is cur.octagons
                and trees is cur.dtrees and ells is cur.ellipsoids):
            return cur
        return AbstractState(cur.ctx, env, octs, trees, ells)

    @staticmethod
    def _patch(cur: AbstractState, post: AbstractState,
               m: _StmtMeta) -> AbstractState:
        """Graft the recorded post-state's writes onto ``cur``.  Equal
        values are left in place so the incoming state's physical
        identity survives wherever possible (keeping the sharing
        shortcuts and the lattice memo hot)."""
        cells = cur.env.cells
        pfind = post.env.cells.find
        for cid in m.write_cells:
            v = pfind(cid)
            if v is None:
                cells = cells.remove(cid)
                continue
            old = cells.find(cid)
            if old is v or (old is not None and old == v):
                continue
            cells = cells.set(cid, v)
        env = cur.env
        if cells is not env.cells:
            env = type(env)(cells, env.clock)

        octs = cur.octagons
        if octs._root is not post.octagons._root:
            pfind = post.octagons.find
            for pid in m.write_packs:
                v = pfind(pid)
                if v is None:
                    octs = octs.remove(pid)
                    continue
                old = octs.find(pid)
                if old is v or (old is not None and old.raw_equal(v)):
                    continue
                octs = octs.set(pid, v)

        trees = cur.dtrees
        if trees._root is not post.dtrees._root:
            pfind = post.dtrees.find
            for pid in m.write_bpacks:
                v = pfind(pid)
                if v is None:
                    trees = trees.remove(pid)
                    continue
                old = trees.find(pid)
                if old is v or (old is not None and old.equal(v)):
                    continue
                trees = trees.set(pid, v)

        ells = cur.ellipsoids
        if ells._root is not post.ellipsoids._root:
            pfind = post.ellipsoids.find
            for sid in m.sites:
                v = pfind(sid)
                if v is None:
                    ells = ells.remove(sid)
                    continue
                old = ells.find(sid)
                if old is v or (old is not None and old == v):
                    continue
                ells = ells.set(sid, v)

        if (env is cur.env and octs is cur.octagons
                and trees is cur.dtrees and ells is cur.ellipsoids):
            return cur
        return AbstractState(cur.ctx, env, octs, trees, ells)
