"""Alarm reporting for checking mode (Sect. 5.3).

"When in checking mode, the iterator issues a warning for each operator
application that may give an error on the concrete level."  Alarms are
deduplicated by (statement id, kind): one program point raising the same
potential error in many abstract iterations is a single alarm for the
human reviewer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..frontend.ast_nodes import Location

__all__ = ["Alarm", "AlarmKind", "AlarmCollector"]


class AlarmKind:
    INT_OVERFLOW = "integer-overflow"
    FLOAT_OVERFLOW = "float-overflow"
    DIV_BY_ZERO = "division-by-zero"
    MOD_BY_ZERO = "modulo-by-zero"
    ARRAY_OOB = "array-index-out-of-bounds"
    SHIFT_RANGE = "shift-out-of-range"
    INVALID_OP = "invalid-float-operation"
    CAST_RANGE = "cast-out-of-range"
    ASSERT_FAIL = "user-assertion"

    ALL = (INT_OVERFLOW, FLOAT_OVERFLOW, DIV_BY_ZERO, MOD_BY_ZERO, ARRAY_OOB,
           SHIFT_RANGE, INVALID_OP, CAST_RANGE, ASSERT_FAIL)


@dataclass(frozen=True)
class Alarm:
    kind: str
    sid: int
    loc: Location
    message: str

    def __str__(self) -> str:
        return f"{self.loc}: [{self.kind}] {self.message}"


class AlarmCollector:
    """Deduplicating alarm sink; inert unless checking mode is active."""

    def __init__(self) -> None:
        self._alarms: List[Alarm] = []
        self._seen: Set[Tuple[int, str]] = set()
        self.checking: bool = False

    def report(self, kind: str, sid: int, loc: Location, message: str) -> None:
        if not self.checking:
            return
        key = (sid, kind)
        if key in self._seen:
            return
        self._seen.add(key)
        self._alarms.append(Alarm(kind, sid, loc, message))

    @property
    def alarms(self) -> List[Alarm]:
        return sorted(self._alarms, key=lambda a: (a.loc.filename, a.loc.line,
                                                   a.loc.col, a.kind))

    def count(self) -> int:
        return len(self._alarms)

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for a in self._alarms:
            out[a.kind] = out.get(a.kind, 0) + 1
        return out
