"""The iterator: compositional abstract execution of IR programs (Sect. 5).

The iterator interprets each program construct by induction on the abstract
syntax, transforming C instructions into directives for the abstract
domains.  It operates in two modes (Sect. 5.3):

* **iteration mode** generates invariants; no warnings are emitted;
* **checking mode** issues a warning for each operator application that may
  err on the concrete level, and continues with the non-erroneous results.

Loops are analyzed by widening/narrowing iterations (Sect. 5.5) with the
parametrized strategies of Sect. 7.1: semantic loop unrolling, widening
with thresholds, delayed widening with a fairness condition, and the
floating iteration perturbation.  In checking mode, the loop invariant is
first computed in iteration mode, then one extra checking pass collects the
potential errors.

Function calls are interpreted by abstract execution of the body in the
calling context — a context-sensitive polyvariant analysis semantically
equivalent to inlining (the family has no recursion).  Call-by-reference
parameters are bound to the actual l-values for the duration of the call.

Trace partitioning (Sect. 7.1.5) delays the merge of if-branches in
user-selected functions by analyzing ``if (c) {S1} else {S2} rest`` as
``if (c) {S1; rest} else {S2; rest}`` up to a bounded split depth.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..domains.ellipsoid import EllipsoidValue
from ..domains.values import CellValue, const_value, top_value
from ..frontend import ir as I
from ..frontend.c_types import EnumType, FloatType, IntType, PointerType
from ..memory.cells import CellInfo
from ..numeric import FloatInterval, IntInterval
from .alarms import AlarmCollector, AlarmKind
from .guards import GuardEngine
from .state import AbstractState, AnalysisContext
from .transfer import EvalResult, Transfer

__all__ = ["Iterator", "Flow"]


@dataclass
class Flow:
    """Outcome of executing a statement sequence: the normal continuation
    plus exceptional continuations (break/continue/return)."""

    normal: AbstractState
    brk: Optional[AbstractState] = None
    cont: Optional[AbstractState] = None
    ret: Optional[AbstractState] = None
    ret_val: Optional[CellValue] = None

    def join(self, other: "Flow") -> "Flow":
        return Flow(
            normal=self.normal.join(other.normal),
            brk=_join_opt(self.brk, other.brk),
            cont=_join_opt(self.cont, other.cont),
            ret=_join_opt(self.ret, other.ret),
            ret_val=_join_opt_val(self.ret_val, other.ret_val),
        )


def _join_opt(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return a.join(b)


def _join_opt_val(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return a.join(b)


class Iterator:
    """Abstract interpreter for one program + configuration."""

    def __init__(self, ctx: AnalysisContext, alarms: Optional[AlarmCollector] = None):
        self.ctx = ctx
        self.cfg = ctx.config
        self.alarms = alarms if alarms is not None else AlarmCollector()
        self.tr = Transfer(ctx, self.alarms)
        self.guards = GuardEngine(self.tr)
        self._fn_stack: List[str] = []
        self._partition_budget: int = ctx.config.max_partition_depth
        # loop_id -> joined loop-head invariant (when collecting).
        self.loop_invariants: Dict[int, AbstractState] = {}
        self.widening_iterations: int = 0
        # sid -> abstract visit count (when cfg.trace, Sect. 5.3 tracing).
        self.visit_counts: Dict[int, int] = {}
        # Optional parallel engine (set by analyze_program when jobs > 1).
        self.parallel = None
        # Optional supervisor (set by analyze_program when budgets or
        # checkpointing are configured); polled at statement and
        # fixpoint-iteration boundaries.
        self.supervisor = None
        # Wall time spent inside outermost loop fixpoints ("iteration"
        # phase); the rest of the run is the checking phase.  The lattice
        # share of it (join/widen/narrow/includes) is split out so
        # --profile-phases can report transfer vs lattice time.
        self.fixpoint_seconds: float = 0.0
        self.fixpoint_lattice_seconds: float = 0.0
        self._fixpoint_depth: int = 0
        # Incremental fixpoint engine (repro.iterator.incremental):
        # statement execution/skip counters, the while-in-a-fixpoint-
        # body flag that routes exec_block through sequence executors,
        # and the per-(sequence, bindings) executor cache, rebuilt when
        # config_generation moves.
        self.stmts_executed: int = 0
        self.stmts_skipped: int = 0
        # Cross-run fixpoint cache (repro.serve.cache.CrossRunCache),
        # attached by the serving layer; None for standalone runs.
        self.cross_run = None
        self.cross_run_hits: int = 0
        self.cross_run_spliced: int = 0
        self._incr_active: bool = False
        self._footprints = None
        self._footprints_generation: int = -1
        self._seq_execs: Dict[Tuple, object] = {}
        # Deterministic invocation ordinal of outermost fixpoints: the
        # coordinate system checkpoints use to find their loop again.
        self._fixpoint_ordinal: int = -1
        # Certificate recording (repro.certify), on under cfg.certify:
        # one (stable statement ordinal, pre-narrowing post-fixpoint,
        # checking-pass invariant) triple per loop occurrence of the
        # checking-mode traversal, in traversal order.  The emitter
        # consumes the stream in the same structural order.
        self.cert_invariants: List[Tuple[int, AbstractState,
                                         AbstractState]] = []
        self._last_pf: Optional[AbstractState] = None
        self._cert_ordinals: Optional[Dict[int, int]] = None

    # -- top level -----------------------------------------------------------------

    def run(self, checking: bool = True) -> AbstractState:
        """Abstractly execute the whole program from the entry point."""
        state = self._initial_state()
        self.alarms.checking = checking
        fn = self.ctx.prog.functions[self.ctx.prog.entry]
        flow = self._exec_function(state, fn, args=[], result=None,
                                   loc=fn.loc, sid=0)
        out = flow.normal
        if flow.ret is not None:
            out = out.join(flow.ret)
        return out

    def _initial_state(self) -> AbstractState:
        state = AbstractState.initial(self.ctx)
        prog, table = self.ctx.prog, self.ctx.table
        env = state.env
        for var in prog.globals:
            init = prog.initializers.get(var.uid)
            layout = table.layout(var.uid)
            for cell, value in _init_cells(layout, var.ctype, init):
                if cell.volatile:
                    env = env.set(cell.cid, self.tr.ctx_volatile_range(cell))
                    continue
                cv = value
                if (self.cfg.enable_clock and cell.is_integer
                        and not cell.volatile):
                    cv = cv.with_clock_tracking(env.clock)
                env = env.set(cell.cid, cv)
        return state._with(env=env)

    # -- statement sequences -----------------------------------------------------------

    def exec_block(self, state: AbstractState, stmts: Sequence[I.Stmt]) -> Flow:
        if (self.parallel is not None and len(stmts) > 1
                and not state.is_bottom and not self._partitioning_active()):
            flow = self.parallel.try_exec_sequence(self, state, stmts)
            if flow is not None:
                return flow
        # Incremental re-execution (repro.iterator.incremental): inside
        # a fixpoint body run, every sequence — branch bodies and called
        # function bodies included — goes through a memoizing executor
        # that skips statements whose footprint slice is unchanged.
        if (self._incr_active and stmts and not state.is_bottom
                and not self._partitioning_active()):
            return self._sequence_executor(stmts).exec(self, state)
        flow = Flow(normal=state)
        i = 0
        while i < len(stmts):
            s = stmts[i]
            if flow.normal.is_bottom:
                break
            # Loop partitioning (Sect. 7.1.5: "a similar technique holds
            # for the unrolled iterations of loops"): keep the zero-
            # iteration exit separate from the looped exits through the
            # rest of the sequence.
            if (isinstance(s, I.SWhile) and self._partitioning_active()
                    and i + 1 < len(stmts) and not s.run_body_first):
                rest = list(stmts[i + 1:])
                self._partition_budget -= 1
                try:
                    skip = self.guards.guard(flow.normal, s.cond, False,
                                             s.sid, s.loc)
                    enter = self.guards.guard(flow.normal, s.cond, True,
                                              s.sid, s.loc)
                    fl_skip = self.exec_block(skip, rest)
                    loop_fl = self._exec_loop(enter, s)
                    fl_loop = self.exec_block(loop_fl.normal, rest)
                    fl_loop = Flow(
                        normal=fl_loop.normal,
                        brk=_join_opt(loop_fl.brk, fl_loop.brk),
                        cont=_join_opt(loop_fl.cont, fl_loop.cont),
                        ret=_join_opt(loop_fl.ret, fl_loop.ret),
                        ret_val=_join_opt_val(loop_fl.ret_val, fl_loop.ret_val),
                    )
                finally:
                    self._partition_budget += 1
                branch_flow = fl_skip.join(fl_loop)
                return Flow(
                    normal=branch_flow.normal,
                    brk=_join_opt(flow.brk, branch_flow.brk),
                    cont=_join_opt(flow.cont, branch_flow.cont),
                    ret=_join_opt(flow.ret, branch_flow.ret),
                    ret_val=_join_opt_val(flow.ret_val, branch_flow.ret_val),
                )
            # Trace partitioning: delay the merge of this if's branches
            # until the end of the enclosing sequence (Sect. 7.1.5).
            if (isinstance(s, I.SIf) and self._partitioning_active()
                    and i + 1 < len(stmts)):
                rest = list(stmts[i + 1:])
                self._partition_budget -= 1
                try:
                    t_state = self.guards.guard(flow.normal, s.cond, True,
                                                s.sid, s.loc)
                    f_state = self.guards.guard(flow.normal, s.cond, False,
                                                s.sid, s.loc)
                    pair = None
                    if self.parallel is not None:
                        # Trace-partition splits become parallel work
                        # units, each carrying its pre-state.
                        pair = self.parallel.try_exec_branches(
                            self,
                            (t_state, list(s.then) + rest),
                            (f_state, list(s.other) + rest))
                    if pair is not None:
                        fl_t, fl_f = pair
                    else:
                        fl_t = self.exec_block(t_state, list(s.then) + rest)
                        fl_f = self.exec_block(f_state, list(s.other) + rest)
                finally:
                    self._partition_budget += 1
                branch_flow = fl_t.join(fl_f)
                return Flow(
                    normal=branch_flow.normal,
                    brk=_join_opt(flow.brk, branch_flow.brk),
                    cont=_join_opt(flow.cont, branch_flow.cont),
                    ret=_join_opt(flow.ret, branch_flow.ret),
                    ret_val=_join_opt_val(flow.ret_val, branch_flow.ret_val),
                )
            sub = self.exec_stmt(flow.normal, s)
            flow = Flow(
                normal=sub.normal,
                brk=_join_opt(flow.brk, sub.brk),
                cont=_join_opt(flow.cont, sub.cont),
                ret=_join_opt(flow.ret, sub.ret),
                ret_val=_join_opt_val(flow.ret_val, sub.ret_val),
            )
            i += 1
        return flow

    def _partitioning_active(self) -> bool:
        return (self._partition_budget > 0 and self._fn_stack
                and self._fn_stack[-1] in self.cfg.partition_functions)

    # -- incremental fixpoint machinery ------------------------------------------

    def _footprint_analyzer(self):
        """One FootprintAnalyzer per configuration generation, shared by
        every incremental body executor of this iterator."""
        gen = self.ctx.config_generation
        if self._footprints is None or self._footprints_generation != gen:
            from ..parallel.footprints import FootprintAnalyzer

            self._footprints = FootprintAnalyzer(self.ctx)
            self._footprints_generation = gen
        return self._footprints

    def _sequence_executor(self, stmts):
        """Cached sequence executor for this statement list under the
        current byref bindings; stale records are discarded whenever the
        supervisor's degradation ladder bumps config_generation.  The
        executor keeps a strong reference to ``stmts``, so keying on its
        id is safe for as long as the cache lives."""
        from .incremental import IncrementalSequenceExecutor, frames_key

        key = (id(stmts), frames_key(self.tr.bindings))
        ex = self._seq_execs.get(key)
        if ex is None or ex.generation != self.ctx.config_generation:
            ex = IncrementalSequenceExecutor(self, stmts)
            self._seq_execs[key] = ex
        return ex

    # -- single statements ----------------------------------------------------------------

    def exec_stmt(self, state: AbstractState, s: I.Stmt) -> Flow:
        if state.is_bottom:
            return Flow(normal=state)
        self.stmts_executed += 1
        if self.supervisor is not None:
            self.supervisor.poll_stmt(self, s)
        if self.cfg.trace:
            self.visit_counts[s.sid] = self.visit_counts.get(s.sid, 0) + 1
        if isinstance(s, I.SAssign):
            return Flow(normal=self._exec_assign(state, s))
        if isinstance(s, I.SIf):
            t_state = self.guards.guard(state, s.cond, True, s.sid, s.loc)
            f_state = self.guards.guard(state, s.cond, False, s.sid, s.loc)
            fl_t = self.exec_block(t_state, s.then)
            fl_f = self.exec_block(f_state, s.other)
            return fl_t.join(fl_f)
        if isinstance(s, I.SWhile):
            return self._exec_loop(state, s)
        if isinstance(s, I.SSwitch):
            return self._exec_switch(state, s)
        if isinstance(s, I.SCall):
            fn = self.ctx.prog.functions[s.func]
            return self._exec_function(state, fn, s.args, s.result, s.loc, s.sid)
        if isinstance(s, I.SReturn):
            val = None
            if s.value is not None:
                res = self.tr.eval(state, s.value, s.sid, s.loc)
                state = res.state
                val = res.value
            return Flow(normal=state.to_bottom(), ret=state, ret_val=val)
        if isinstance(s, I.SBreak):
            return Flow(normal=state.to_bottom(), brk=state)
        if isinstance(s, I.SContinue):
            return Flow(normal=state.to_bottom(), cont=state)
        if isinstance(s, I.SWait):
            return Flow(normal=state._with(env=state.env.tick()))
        if isinstance(s, I.SAssume):
            return Flow(normal=self.guards.guard(state, s.cond, True, s.sid, s.loc))
        if isinstance(s, I.SCheck):
            res = self.tr.eval(state, s.cond, s.sid, s.loc)
            state = res.state
            if Transfer.truth(res.value) is not True:
                self.alarms.report(AlarmKind.ASSERT_FAIL, s.sid, s.loc,
                                   "assertion may not hold")
            return Flow(normal=self.guards.guard(state, s.cond, True, s.sid, s.loc))
        if isinstance(s, I.SNop):
            return Flow(normal=state)
        raise TypeError(f"unknown statement {s!r}")  # pragma: no cover

    # -- assignment ---------------------------------------------------------------------------

    def _exec_assign(self, state: AbstractState, s: I.SAssign) -> AbstractState:
        res = self.tr.eval(state, s.value, s.sid, s.loc)
        state = res.state
        if res.value.is_bottom:
            return state.to_bottom()
        state, cells = self.tr.resolve_lvalue(state, s.target, s.sid, s.loc)
        if not cells:
            return state.to_bottom()
        value = self._coerce_value(res.value, s.target.ctype)
        strong = len(cells) == 1 and cells[0][1] and not cells[0][0].is_summary
        # Clocked-component maintenance (Sect. 6.2.1).
        for cell, exact in cells:
            cv = value
            if (self.cfg.enable_clock and cell.is_integer and not cell.volatile
                    and isinstance(cv.itv, IntInterval)):
                delta = self._self_increment_delta(s, cell, state)
                old = state.env.get(cell.cid)
                if delta is not None and old is not None and old.has_clock:
                    cv = CellValue(cv.itv, old.minus_clock, old.plus_clock)
                    cv = cv.shift_clocked(delta)
                else:
                    cv = cv.with_clock_tracking(state.env.clock)
            if strong:
                state = state.set_cell(cell.cid, cv)
            else:
                state = state.weak_set_cell(cell.cid, cv)
        # Relational domain updates (only meaningful for strong updates).
        target_cell = cells[0][0] if strong else None
        if target_cell is not None:
            state = self._update_octagons(state, target_cell, s, res)
            state = self._update_dtrees(state, target_cell, s, res)
        else:
            for cell, _ in cells:
                state = self._forget_relational(state, cell)
        state = self._update_ellipsoids(state, cells, s, res)
        if target_cell is not None and not state.is_bottom:
            state = state.reduce_cell_from_relational(target_cell.cid)
        return state

    def _coerce_value(self, value: CellValue, ctype) -> CellValue:
        if isinstance(ctype, FloatType) and isinstance(value.itv, IntInterval):
            return CellValue(value.itv.to_float_interval())
        if isinstance(ctype, (IntType, EnumType)) and not isinstance(value.itv, IntInterval):
            return CellValue(IntInterval.from_float_interval(value.float_range()))
        return value

    def _self_increment_delta(self, s: I.SAssign, cell: CellInfo,
                              state: AbstractState) -> Optional[IntInterval]:
        """Detect X := X + e (same cell on both sides); returns e's range."""
        e = s.value
        while isinstance(e, I.Cast):
            e = e.arg
        if not (isinstance(e, I.BinOp) and e.op in ("add", "sub")):
            return None
        def cell_of(x):
            while isinstance(x, I.Cast):
                x = x.arg
            if isinstance(x, I.Load):
                from ..packing.common import static_cell

                c = static_cell(x.lval, self.ctx.table)
                return c.cid if c is not None else None
            return None

        if cell_of(e.left) == cell.cid:
            other = e.right
            sign = 1 if e.op == "add" else -1
        elif e.op == "add" and cell_of(e.right) == cell.cid:
            other = e.left
            sign = 1
        else:
            return None
        res = self.tr.eval(state, other, s.sid, s.loc)
        delta = res.value.itv
        if not isinstance(delta, IntInterval) or not delta.is_bounded:
            return None
        return delta if sign > 0 else delta.neg()

    def _update_octagons(self, state: AbstractState, cell: CellInfo,
                         s: I.SAssign, res: EvalResult) -> AbstractState:
        if not self.cfg.enable_octagons or state.is_bottom:
            return state
        pack_ids = self.ctx.oct_packs.packs_of_cell(cell.cid)
        if not pack_ids:
            return state
        form = res.form
        if form is None:
            form = self.guards._form_of(state, s.value)
        lookup = self.tr.lookup_form_var(state)
        octs = state.octagons
        for pack_id in pack_ids:
            pack = self.ctx.oct_packs.pack(pack_id)
            index = pack.index_of()
            oct_ = octs.get(pack_id)
            if oct_ is None:
                continue
            relational = form is not None and any(
                v in index and v != cell.cid for v in form.variables)
            if not relational and oct_.is_top:
                # The interval domain already carries unary-only facts;
                # keeping the octagon top avoids a useless cubic closure.
                continue
            pos = index[cell.cid]
            if form is not None:
                new_oct = oct_.assign_linear_form(pos, form, index, lookup)
            else:
                new_oct = oct_.assign_interval(pos, res.value.float_range())
            if new_oct.is_bottom:
                return state.to_bottom()
            octs = octs.set(pack_id, new_oct)
        state = state._with(octagons=octs)
        if self.cfg.octagon_pivot_reduction:
            for pack_id in pack_ids:
                state = state.propagate_octagon_pivots(pack_id)
                if state.is_bottom:
                    break
        return state

    def _update_dtrees(self, state: AbstractState, cell: CellInfo,
                       s: I.SAssign, res: EvalResult) -> AbstractState:
        if not self.cfg.enable_decision_trees or state.is_bottom:
            return state
        from ..packing.common import is_bool_cell

        trees = state.dtrees
        if is_bool_cell(cell):
            pack_ids = self.ctx.bool_packs.packs_of_bool(cell.cid)
            if not pack_ids:
                return state
            true_vals, false_vals = self._bool_outcome_facts(state, s)
            for pack_id in pack_ids:
                tree = trees.get(pack_id)
                if tree is None:
                    continue
                pack = self.ctx.bool_packs.pack(pack_id)
                tv = _restrict_facts(true_vals, pack.numeric_cids)
                fv = _restrict_facts(false_vals, pack.numeric_cids)
                trees = trees.set(pack_id, tree.assign_bool(cell.cid, tv, fv))
            return state._with(dtrees=trees)
        pack_ids = self.ctx.bool_packs.packs_of_numeric(cell.cid)
        for pack_id in pack_ids:
            tree = trees.get(pack_id)
            if tree is None:
                continue
            v = state.env.get(cell.cid)
            if v is not None:
                trees = trees.set(pack_id, tree.assign_numeric(cell.cid, v.itv))
        if pack_ids:
            state = state._with(dtrees=trees)
        return state

    def _bool_outcome_facts(self, state: AbstractState, s: I.SAssign):
        """For b := cond, the numeric facts under each outcome of cond."""
        cond = s.value
        while isinstance(cond, I.Cast):
            cond = cond.arg
        t = self.tr.eval(state, cond, s.sid, s.loc)
        truth = Transfer.truth(t.value)
        if truth is True:
            return {}, None
        if truth is False:
            return None, {}
        s_true = self.guards.guard(state, cond, True, s.sid, s.loc)
        s_false = self.guards.guard(state, cond, False, s.sid, s.loc)
        true_vals = None if s_true.is_bottom else _delta_facts(state, s_true)
        false_vals = None if s_false.is_bottom else _delta_facts(state, s_false)
        return true_vals, false_vals

    def _update_ellipsoids(self, state: AbstractState, cells, s: I.SAssign,
                           res: EvalResult) -> AbstractState:
        if not self.cfg.enable_ellipsoids or state.is_bottom:
            return state
        sites = self.ctx.filter_sites
        if not len(sites):
            return state
        ells = state.ellipsoids
        if s.sid in sites.member_sids:
            site = sites.by_sid.get(s.sid)
            if site is not None and s.sid == site.rotate_sid:
                # Pre-assignment reduction, then the delta rotation.
                k = ells.get(site.site_id, math.inf)
                x_iv = state.cell_float_range(site.x_cid)
                y_iv = state.cell_float_range(site.y_cid)
                t_max = self._t_magnitude(state, site, s)
                params = self.ctx.site_params(site.site_id, t_max)
                v = EllipsoidValue(params, k).reduce_from_intervals(
                    x_iv, y_iv, equal_vars=(site.x_cid == site.y_cid))
                rotated = v.rotate()
                ells = ells.set(site.site_id, rotated.k)
                # Use the ellipsoid to tighten the temporary X'.
                state = self._reduce_from_site(state, site, rotated,
                                               site.t_cid)
            elif site is not None and s.sid == site.commit_sid:
                k = ells.get(site.site_id, math.inf)
                t_max = 0.0
                params = self.ctx.site_params(site.site_id, t_max)
                v = EllipsoidValue(params, k)
                state = self._reduce_from_site(state, site, v, site.x_cid)
                state = self._reduce_from_site(state, site, v, site.y_cid,
                                               y_side=True)
            return state._with(ellipsoids=ells)
        # A non-member write to X or Y invalidates the site constraint.
        changed = False
        for cell, _ in cells:
            for site_id in sites.sites_writing(cell.cid):
                if not math.isinf(ells.get(site_id, math.inf)):
                    ells = ells.set(site_id, math.inf)
                    changed = True
        if changed:
            return state._with(ellipsoids=ells)
        return state

    def _t_magnitude(self, state: AbstractState, site, s: I.SAssign) -> float:
        acc = FloatInterval.const(0.0)
        for coeff, payload in site.t_terms:
            if isinstance(payload, int):
                iv = state.cell_float_range(payload)
            else:
                iv = self.tr.eval(state, payload, s.sid, s.loc).value.float_range()
            acc = acc.add(iv.mul(FloatInterval.const(coeff)))
        return acc.magnitude()

    def _reduce_from_site(self, state: AbstractState, site, v: EllipsoidValue,
                          cid: int, y_side: bool = False) -> AbstractState:
        if v.is_top:
            return state
        bound = v.y_bound() if y_side else v.x_bound()
        cur = state.env.get(cid)
        if cur is None or not cur.is_float:
            return state
        new_itv = cur.itv.meet(bound)
        if new_itv == cur.itv:
            return state
        if new_itv.is_empty:
            return state  # conservative: keep the interval
        return state.set_cell(cid, CellValue(new_itv))

    def _forget_relational(self, state: AbstractState, cell: CellInfo) -> AbstractState:
        """Weak update: relational facts about the cell must be dropped."""
        if self.cfg.enable_octagons:
            octs = state.octagons
            for pack_id in self.ctx.oct_packs.packs_of_cell(cell.cid):
                oct_ = octs.get(pack_id)
                if oct_ is None:
                    continue
                pack = self.ctx.oct_packs.pack(pack_id)
                octs = octs.set(pack_id, oct_.forget(pack.index_of()[cell.cid]))
            state = state._with(octagons=octs)
        if self.cfg.enable_decision_trees:
            trees = state.dtrees
            for pack_id in self.ctx.bool_packs.packs_of_numeric(cell.cid):
                tree = trees.get(pack_id)
                if tree is not None:
                    trees = trees.set(pack_id,
                                      tree.assign_numeric(cell.cid,
                                                          IntInterval.top()))
            for pack_id in self.ctx.bool_packs.packs_of_bool(cell.cid):
                tree = trees.get(pack_id)
                if tree is not None:
                    trees = trees.set(pack_id, tree.forget_bool(cell.cid))
            state = state._with(dtrees=trees)
        if self.cfg.enable_ellipsoids:
            ells = state.ellipsoids
            for site_id in self.ctx.filter_sites.sites_writing(cell.cid):
                ells = ells.set(site_id, math.inf)
            state = state._with(ellipsoids=ells)
        return state

    # -- loops ----------------------------------------------------------------------------------


    def _exec_body_once(self, body_in: AbstractState, s: I.SWhile):
        """One execution of body (+for-step, on both normal and continue
        paths) returning (resume_state, brk, ret, ret_val)."""
        fl = self.exec_block(body_in, s.body)
        resume = fl.normal if fl.cont is None else fl.normal.join(fl.cont)
        brk, ret, ret_val = fl.brk, fl.ret, fl.ret_val
        if s.step and not resume.is_bottom:
            fl2 = self.exec_block(resume, s.step)
            resume = fl2.normal
            brk = _join_opt(brk, fl2.brk)
            ret = _join_opt(ret, fl2.ret)
            ret_val = _join_opt_val(ret_val, fl2.ret_val)
        return resume, brk, ret, ret_val

    def _exec_loop(self, state: AbstractState, s: I.SWhile) -> Flow:
        exits: Optional[AbstractState] = None
        ret: Optional[AbstractState] = None
        ret_val: Optional[CellValue] = None
        cur = state
        if s.run_body_first:
            cur, brk, r, rv = self._exec_body_once(cur, s)
            exits = _join_opt(exits, brk)
            ret = _join_opt(ret, r)
            ret_val = _join_opt_val(ret_val, rv)
        # Semantic loop unrolling (Sect. 7.1.1).
        unroll = self.cfg.loop_unroll.get(s.loop_id, self.cfg.default_unroll)
        for _ in range(unroll):
            if cur.is_bottom:
                break
            exits = _join_opt(exits, self.guards.guard(cur, s.cond, False,
                                                       s.sid, s.loc))
            body_in = self.guards.guard(cur, s.cond, True, s.sid, s.loc)
            if body_in.is_bottom:
                cur = body_in
                break
            cur, brk, r, rv = self._exec_body_once(body_in, s)
            exits = _join_opt(exits, brk)
            ret = _join_opt(ret, r)
            ret_val = _join_opt_val(ret_val, rv)
        # Widening/narrowing fixpoint from the remaining entry state.
        inv = self._loop_fixpoint(cur, s)
        if self.cfg.certify and self.alarms.checking:
            # _last_pf is the pre-narrowing post-fixpoint of exactly this
            # _loop_fixpoint call (assigned at its return boundary;
            # nested fixpoints during narrowing are overwritten again
            # before the call returns).
            pf = self._last_pf if self._last_pf is not None else inv
            self.cert_invariants.append((self._stable_ordinal(s.sid),
                                         pf, inv))
        if self.cfg.collect_invariants:
            prev = self.loop_invariants.get(s.loop_id)
            self.loop_invariants[s.loop_id] = \
                inv if prev is None else prev.join(inv)
        # Final pass from the invariant (checking mode collects alarms here).
        exits = _join_opt(exits, self.guards.guard(inv, s.cond, False,
                                                   s.sid, s.loc))
        body_in = self.guards.guard(inv, s.cond, True, s.sid, s.loc)
        if not body_in.is_bottom:
            _, brk, r, rv = self._exec_body_once(body_in, s)
            exits = _join_opt(exits, brk)
            ret = _join_opt(ret, r)
            ret_val = _join_opt_val(ret_val, rv)
        normal = exits if exits is not None else state.to_bottom()
        return Flow(normal=normal, ret=ret, ret_val=ret_val)

    def _stable_ordinal(self, sid: int) -> int:
        """Process-independent statement identity for certificate records
        (alarms and loop occurrences are matched across re-compilations
        of the same source by ordinal, never by raw sid)."""
        if self._cert_ordinals is None:
            from ..serve.fingerprints import stable_ordinals

            self._cert_ordinals = stable_ordinals(self.ctx.prog)
        return self._cert_ordinals[sid]

    def _loop_fixpoint(self, entry: AbstractState, s: I.SWhile) -> AbstractState:
        if entry.is_bottom:
            self._last_pf = entry
            return entry
        was_checking = self.alarms.checking
        self.alarms.checking = False
        self._fixpoint_depth += 1
        if self._fixpoint_depth == 1:
            self._fixpoint_ordinal += 1
        start = time.perf_counter() if self._fixpoint_depth == 1 else 0.0
        lat_start = self.ctx.lattice_seconds if self._fixpoint_depth == 1 else 0.0
        try:
            return self._loop_fixpoint_inner(entry, s)
        finally:
            if self._fixpoint_depth == 1:
                self.fixpoint_seconds += time.perf_counter() - start
                self.fixpoint_lattice_seconds += \
                    self.ctx.lattice_seconds - lat_start
            self._fixpoint_depth -= 1
            self.alarms.checking = was_checking

    def _loop_fixpoint_inner(self, entry: AbstractState, s: I.SWhile) -> AbstractState:
        inv = entry
        prev_unstable: Optional[Set[int]] = None
        fairness_left = self.cfg.delay_fairness_bound
        start_it = 0
        sup = self.supervisor
        if sup is not None and self._fixpoint_depth == 1:
            # Checkpoint resume: when this is the fixpoint the checkpoint
            # was taken in (matched by invocation ordinal), swap in the
            # captured invariant and bookkeeping and continue from the
            # recorded iteration — bit-identical to the interrupted run.
            restored = sup.resume_into(self, s.loop_id,
                                       self._fixpoint_ordinal)
            if restored is not None:
                inv, prev_unstable, fairness_left, start_it = restored
        # Incremental body re-execution (repro.iterator.incremental):
        # off under tracing (visit counts would diverge); partitioned
        # regions are excluded inside exec_block itself.  The flag is
        # only raised here, where alarms.checking is off, so a skipped
        # statement can never lose an alarm.
        use_incr = self.cfg.incremental and not self.cfg.trace

        def run_body(body_state):
            if not use_incr:
                return self._exec_body_once(body_state, s)
            prev_active = self._incr_active
            self._incr_active = True
            try:
                return self._exec_body_once(body_state, s)
            finally:
                self._incr_active = prev_active

        eps = self.cfg.iteration_epsilon
        for it in range(start_it, self.cfg.max_widening_iterations):
            if sup is not None:
                sup.on_fixpoint_iteration(self, s.loop_id,
                                          self._fixpoint_ordinal, it, inv,
                                          prev_unstable, fairness_left)
            self.widening_iterations += 1
            body_in = self.guards.guard(inv, s.cond, True, s.sid, s.loc)
            after, _, _, _ = run_body(body_in)
            target = entry.join(after)
            if inv.includes(target):
                break  # post-fixpoint reached (exact check, Sect. 7.1.4)
            # Floating iteration perturbation: iterate with F-hat.  The
            # sharing-aware diff over-approximates the changed set (it is
            # based on physical identity), so value-equal cells are
            # filtered out: inflating them would perturb the fixpoint
            # based on incidental sharing rather than semantic change.
            changed = [cid for cid in inv.env.diff_cids(target.env)
                       if inv.env.get(cid) != target.env.get(cid)]
            target = target.inflate_floats(eps, changed)
            unstable = _unstable_cells(inv, target)
            newly_stable = (prev_unstable is not None
                            and bool(prev_unstable - unstable))
            if it < self.cfg.widening_delay or (newly_stable and fairness_left > 0):
                if newly_stable and it >= self.cfg.widening_delay:
                    fairness_left -= 1  # fairness: bounded extra joins
                inv = inv.join(target)
            else:
                inv = inv.widen(target, frozen_cids=None)
            prev_unstable = unstable
        else:
            # Iteration budget exhausted: force convergence with
            # threshold-free widening.  Each unstable bound jumps straight
            # to infinity, so the rounds are bounded by the length of the
            # dependency chains; a genuine post-fixpoint is REQUIRED before
            # narrowing and checking may run (soundness).
            fallback_rounds = 64 + len(inv.env.cells)
            for _ in range(fallback_rounds):
                body_in = self.guards.guard(inv, s.cond, True, s.sid, s.loc)
                after, _, _, _ = run_body(body_in)
                target = entry.join(after)
                if inv.includes(target):
                    break
                # Threshold-free widening bypasses the timed AbstractState
                # wrappers (it constructs the state directly), so book its
                # wall time to the lattice phase by hand — otherwise it
                # silently inflates iteration-transfer in --stats.
                t0 = time.perf_counter()
                inv = AbstractState(
                    inv.ctx,
                    inv.env.widen(target.env, None),
                    inv.octagons.merge(target.octagons,
                                       lambda k, a, b: a if a is b else a.widen(b),
                                       missing_self=lambda k, b: b,
                                       missing_other=lambda k, a: a),
                    inv.dtrees.merge(target.dtrees,
                                     lambda k, a, b: a if a is b else a.widen(b),
                                     missing_self=lambda k, b: b,
                                     missing_other=lambda k, a: a),
                    inv.ellipsoids.merge(target.ellipsoids,
                                         lambda k, a, b: a if b <= a else math.inf,
                                         missing_self=lambda k, y: y,
                                         missing_other=lambda k, x: x),
                )
                self.ctx.lattice_seconds += time.perf_counter() - t0
            else:
                from ..errors import AnalysisError

                raise AnalysisError(
                    f"loop {s.loop_id} did not reach a post-fixpoint even "
                    f"under threshold-free widening")
        # Narrowing (decreasing) iterations.  Because ``inv`` is a
        # post-fixpoint, ``entry ∪ F(inv)`` still over-approximates the
        # concrete least fixpoint, so replacing the invariant with it is a
        # sound decreasing step — and unlike classical narrowing it also
        # retracts finite threshold bounds, not just infinite ones.
        #
        # The pre-narrowing post-fixpoint is kept for certificate
        # emission: it passed the exact ``inv ⊒ entry ∪ F(inv)`` check
        # above, so a one-application checker can always re-verify it,
        # whereas the narrowed invariant below is only *usually* stable
        # under one more application.
        pf = inv
        for _ in range(self.cfg.narrowing_steps):
            body_in = self.guards.guard(inv, s.cond, True, s.sid, s.loc)
            after, _, _, _ = run_body(body_in)
            target = entry.join(after)
            if inv.includes(target):
                if target.includes(inv):
                    break  # stable: no more refinement possible
                inv = target
            else:
                inv = inv.narrow(target)
                break
        # Assigned at the return boundary: nested fixpoints inside the
        # narrowing body runs above clobber _last_pf, so the caller must
        # see this call's value, written last.
        self._last_pf = pf
        return inv

    # -- switch -----------------------------------------------------------------------------------

    def _exec_switch(self, state: AbstractState, s: I.SSwitch) -> Flow:
        res = self.tr.eval(state, s.scrutinee, s.sid, s.loc)
        state = res.state
        scrutinee_cell = self.guards._single_cell(state, s.scrutinee, s.sid, s.loc)
        out: Optional[Flow] = None
        covered: List[int] = []
        for values, body in s.cases:
            if values is None:
                branch = self._restrict_scrutinee_not_in(state, scrutinee_cell,
                                                         covered)
            else:
                covered.extend(values)
                branch = self._restrict_scrutinee_in(state, scrutinee_cell,
                                                     values, res.value)
            if branch.is_bottom:
                continue
            fl = self.exec_block(branch, body)
            out = fl if out is None else out.join(fl)
        if not s.has_default:
            fallthrough = self._restrict_scrutinee_not_in(state, scrutinee_cell,
                                                          covered)
            fl = Flow(normal=fallthrough)
            out = fl if out is None else out.join(fl)
        if out is None:
            return Flow(normal=state.to_bottom())
        # break inside a switch exits the switch.
        normal = out.normal
        if out.brk is not None:
            normal = normal.join(out.brk)
        return Flow(normal=normal, ret=out.ret, ret_val=out.ret_val,
                    cont=out.cont)

    def _restrict_scrutinee_in(self, state: AbstractState, cell, values,
                               value: CellValue) -> AbstractState:
        allowed = IntInterval.empty()
        for v in values:
            allowed = allowed.join(IntInterval.const(v))
        itv = value.itv if isinstance(value.itv, IntInterval) else \
            IntInterval.from_float_interval(value.float_range())
        if itv.meet(allowed).is_empty:
            return state.to_bottom()
        if cell is not None:
            cur = state.env.get(cell.cid)
            if cur is not None:
                met = cur.itv.meet(allowed)
                if met.is_empty:
                    return state.to_bottom()
                state = state.set_cell(
                    cell.cid, CellValue(met, cur.minus_clock, cur.plus_clock))
        return state

    def _restrict_scrutinee_not_in(self, state: AbstractState, cell,
                                   covered) -> AbstractState:
        if cell is None:
            return state
        cur = state.env.get(cell.cid)
        if cur is None or not isinstance(cur.itv, IntInterval):
            return state
        itv = cur.itv
        for v in covered:
            itv = itv.restrict_ne(v)
        if itv.is_empty:
            return state.to_bottom()
        if itv != cur.itv:
            state = state.set_cell(cell.cid,
                                   CellValue(itv, cur.minus_clock, cur.plus_clock))
        return state

    # -- calls ------------------------------------------------------------------------------------

    def _exec_function(self, state: AbstractState, fn: I.IRFunction,
                       args, result, loc, sid: int) -> Flow:
        bindings: Dict[int, I.LValue] = {}
        for param, arg in zip(fn.params, args):
            if isinstance(param.ctype, PointerType):
                assert isinstance(arg, I.LValue)
                bindings[param.uid] = self._resolve_binding(arg)
            else:
                res = self.tr.eval(state, arg, sid, loc)
                state = res.state
                cell = self.ctx.table.scalar_cell(param.uid)
                state = state.set_cell(cell.cid,
                                       self._coerce_value(res.value, param.ctype))
        # Locals start uninitialized: any value of their type.
        for local in fn.locals:
            for cell in self.ctx.table.cells_of_var(local.uid):
                state = state.set_cell(cell.cid, top_value(cell.ctype))
        self.tr.bindings.append(bindings)
        self._fn_stack.append(fn.name)
        try:
            fl = self.exec_block(state, fn.body)
        finally:
            self._fn_stack.pop()
            self.tr.bindings.pop()
        out = fl.normal
        if fl.ret is not None:
            out = out.join(fl.ret)
        if result is not None and not out.is_bottom:
            val = fl.ret_val
            if val is None:
                val = top_value(fn.ret_type)
            out, cells = self.tr.resolve_lvalue(out, result, sid, loc)
            for cell, exact in cells:
                v = self._coerce_value(val, cell.ctype)
                if self.cfg.enable_clock and cell.is_integer and isinstance(v.itv, IntInterval):
                    v = v.with_clock_tracking(out.env.clock)
                if exact and not cell.is_summary:
                    out = out.set_cell(cell.cid, v)
                else:
                    out = out.weak_set_cell(cell.cid, v)
            if cells and len(cells) == 1 and cells[0][1]:
                out = self._forget_relational_target(out, cells[0][0])
        return Flow(normal=out, brk=fl.brk, cont=fl.cont)

    def _forget_relational_target(self, state: AbstractState,
                                  cell: CellInfo) -> AbstractState:
        """A call result lands in a cell: relational facts become stale."""
        return self._forget_relational(state, cell)

    def _resolve_binding(self, lv: I.LValue) -> I.LValue:
        """Resolve caller-side derefs so the binding survives frame pops."""
        if isinstance(lv, I.LDeref):
            return self.tr.resolve_deref(lv.var)
        if isinstance(lv, I.LIndex):
            return I.LIndex(self._resolve_binding(lv.base), lv.index,
                            lv.element_type)
        if isinstance(lv, I.LField):
            return I.LField(self._resolve_binding(lv.base), lv.fieldname,
                            lv.field_type)
        return lv


def _unstable_cells(inv: AbstractState, target: AbstractState) -> Set[int]:
    out: Set[int] = set()
    for cid in inv.env.diff_cids(target.env):
        a = inv.env.get(cid)
        b = target.env.get(cid)
        if a is None or b is None:
            out.add(cid)
        elif not a.includes(b):
            out.add(cid)
    return out


def _delta_facts(before: AbstractState, after: AbstractState) -> Dict[int, object]:
    """Cells whose interval strictly tightened between two states."""
    out: Dict[int, object] = {}
    for cid in before.env.diff_cids(after.env):
        a = before.env.get(cid)
        b = after.env.get(cid)
        if a is None or b is None:
            continue
        if a.itv != b.itv and a.includes(b):
            out[cid] = b.itv
    return out


def _restrict_facts(facts, numeric_cids):
    if facts is None:
        return None
    allowed = set(numeric_cids)
    return {cid: iv for cid, iv in facts.items() if cid in allowed}


def _init_cells(layout, ctype, init):
    """Yield (cell, CellValue) pairs for a global's initializer."""
    from ..frontend.c_types import ArrayType, RecordType
    from ..memory.cells import (
        AtomicLayout, ExpandedArrayLayout, RecordLayout, ShrunkArrayLayout,
    )

    if isinstance(layout, AtomicLayout):
        value = init if init is not None else 0
        yield layout.cell, const_value(layout.cell.ctype, value)
    elif isinstance(layout, ShrunkArrayLayout):
        values = list(_flatten_scalars(init)) if init is not None else [0]
        cell = layout.cell
        acc = const_value(cell.ctype, values[0])
        for v in values[1:]:
            acc = acc.join(const_value(cell.ctype, v))
        yield cell, acc
    elif isinstance(layout, ExpandedArrayLayout):
        assert isinstance(ctype, ArrayType)
        items = init if init is not None else [None] * layout.length
        for sub_layout, sub_init in zip(layout.elements, items):
            yield from _init_cells(sub_layout, ctype.element, sub_init)
    elif isinstance(layout, RecordLayout):
        assert isinstance(ctype, RecordType)
        for fname, ftype in ctype.fields:
            sub_init = init.get(fname) if isinstance(init, dict) else None
            yield from _init_cells(layout.field(fname), ftype, sub_init)


def _flatten_scalars(init):
    if isinstance(init, list):
        for item in init:
            yield from _flatten_scalars(item)
    elif isinstance(init, dict):
        for item in init.values():
            yield from _flatten_scalars(item)
    else:
        yield init
