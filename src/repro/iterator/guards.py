"""Guard transfer functions: abstract test refinement (Sect. 5.4).

``guard(state, c, positive)`` over-approximates the collecting semantics of
a condition: the subset of environments satisfying ``c`` (or ``!c``).
Compound conditions are handled by structural induction, atomic comparisons
by a combination of

* direct interval refinement of l-value operands,
* backward propagation through interval linear forms (each variable of a
  linear constraint is bounded by solving for it with the others
  intervalized),
* octagonal constraint injection for ±1-coefficient constraints over pack
  variables (Sect. 6.2.2),
* decision-tree restriction for boolean tests, feeding the recorded
  numeric refinements back into the intervals (Sect. 6.2.4).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..domains.values import CellValue
from ..frontend import ir as I
from ..frontend.ast_nodes import Location
from ..frontend.c_types import FloatType, IntType
from ..memory.cells import CellInfo
from ..numeric import FloatInterval, IntInterval, LinearForm
from .state import AbstractState
from .transfer import Transfer

__all__ = ["GuardEngine"]


class GuardEngine:
    def __init__(self, transfer: Transfer):
        self.tr = transfer
        self.ctx = transfer.ctx

    # -- entry point -----------------------------------------------------------

    def guard(self, state: AbstractState, cond: I.Expr, positive: bool,
              sid: int, loc: Location) -> AbstractState:
        if state.is_bottom:
            return state
        if isinstance(cond, I.Const):
            holds = (cond.value != 0) == positive
            return state if holds else state.to_bottom()
        if isinstance(cond, I.NotOp):
            return self.guard(state, cond.arg, not positive, sid, loc)
        if isinstance(cond, I.BoolOp):
            if (cond.op == "and") == positive:
                # Conjunction: refine sequentially.
                s = self.guard(state, cond.left, positive, sid, loc)
                return self.guard(s, cond.right, positive, sid, loc)
            # Disjunction: join of the two refinements.
            a = self.guard(state, cond.left, positive, sid, loc)
            b = self.guard(state, cond.right, positive, sid, loc)
            return a.join(b)
        if isinstance(cond, I.BinOp) and cond.is_comparison:
            op = cond.op if positive else _negate_cmp(cond.op)
            return self._atomic(state, op, cond.left, cond.right, sid, loc)
        # Scalar truth test: c != 0 (or == 0 for the negative branch).
        return self._truth_test(state, cond, positive, sid, loc)

    # -- truth tests on scalars ----------------------------------------------------

    def _truth_test(self, state: AbstractState, expr: I.Expr, positive: bool,
                    sid: int, loc: Location) -> AbstractState:
        res = self.tr.eval(state, expr, sid, loc)
        state = res.state
        t = Transfer.truth(res.value)
        if t is not None and t != positive:
            return state.to_bottom()
        cell = self._single_cell(state, expr, sid, loc)
        if cell is not None:
            state = self._refine_truth_cell(state, cell, positive, sid, loc)
        return state

    def _refine_truth_cell(self, state: AbstractState, cell: CellInfo,
                           positive: bool, sid: int, loc: Location) -> AbstractState:
        v = state.env.get(cell.cid)
        if v is not None and not cell.volatile and not cell.is_summary:
            itv = v.itv
            if isinstance(itv, IntInterval):
                new = itv.restrict_ne(0) if positive else itv.meet(IntInterval.const(0))
                if new != itv:
                    nv = CellValue(new, v.minus_clock, v.plus_clock)
                    if nv.is_bottom:
                        return state.to_bottom()
                    state = state.set_cell(cell.cid, nv)
            else:
                if not positive:
                    new = itv.meet(FloatInterval.const(0.0))
                    nv = CellValue(new, v.minus_clock, v.plus_clock)
                    if nv.is_bottom:
                        return state.to_bottom()
                    state = state.set_cell(cell.cid, nv)
        # Decision-tree restriction for boolean cells.
        state = self._guard_tree_bool(state, cell, positive)
        return state

    def _guard_tree_bool(self, state: AbstractState, cell: CellInfo,
                         positive: bool) -> AbstractState:
        if not self.ctx.config.enable_decision_trees:
            return state
        for pack_id in self.ctx.bool_packs.packs_of_bool(cell.cid):
            tree = state.dtrees.get(pack_id)
            if tree is None:
                continue
            restricted = tree.guard_bool(cell.cid, positive)
            if restricted.is_bottom:
                return state.to_bottom()
            if restricted is not tree:
                state = state._with(dtrees=state.dtrees.set(pack_id, restricted))
                # Feed the numeric refinement back into the intervals.
                for cid, bound in restricted.numeric_refinement().items():
                    state = state._meet_cell_interval(cid, bound, pack_id,
                                                      kind="tree")
                    if state.is_bottom:
                        return state
        return state

    # -- atomic comparisons -----------------------------------------------------------

    def _atomic(self, state: AbstractState, op: str, left: I.Expr,
                right: I.Expr, sid: int, loc: Location) -> AbstractState:
        lres = self.tr.eval(state, left, sid, loc)
        rres = self.tr.eval(lres.state, right, sid, loc)
        state = rres.state
        if lres.is_bottom or rres.is_bottom:
            return state.to_bottom()
        operand_float = isinstance(_op_type(left, right), FloatType)
        # Unsatisfiability check.
        from .transfer import _compare

        verdict = _compare(op, lres.value, rres.value,
                           _op_type(left, right))
        if verdict is False:
            return state.to_bottom()
        # Boolean-style equality tests drive the decision trees.
        state = self._maybe_bool_equality(state, op, left, right, sid, loc)
        if state.is_bottom:
            return state
        # Direct interval refinement of both operands.
        state = self._refine_operand(state, left, op, rres.value, sid, loc,
                                     swap=False)
        if state.is_bottom:
            return state
        state = self._refine_operand(state, right, _swap_cmp(op), lres.value,
                                     sid, loc, swap=True)
        if state.is_bottom:
            return state
        # Linear-form backward refinement + octagon injection.
        if self.ctx.config.enable_linearization or self.ctx.config.enable_octagons:
            lf, rf = lres.form, rres.form
            if lf is None:
                lf = self._form_of(state, left)
            if rf is None:
                rf = self._form_of(state, right)
            if lf is not None and rf is not None:
                state = self._guard_linear(state, op, lf, rf, sid, loc)
        return state

    def _maybe_bool_equality(self, state: AbstractState, op: str, left: I.Expr,
                             right: I.Expr, sid: int, loc: Location) -> AbstractState:
        """b == 0 / b != 0 / b == 1 style tests restrict decision trees."""
        if op not in ("eq", "ne"):
            return state
        for a, b in ((left, right), (right, left)):
            if isinstance(b, I.Const):
                cell = self._single_cell(state, a, sid, loc)
                if cell is not None:
                    want_true = (b.value != 0) == (op == "eq")
                    state = self._guard_tree_bool(state, cell, want_true)
                    return state
        return state

    def _single_cell(self, state: AbstractState, expr: I.Expr, sid: int,
                     loc: Location) -> Optional[CellInfo]:
        if not isinstance(expr, I.Load):
            return None
        _, cells = self.tr.resolve_lvalue(state, expr.lval, sid, loc)
        if len(cells) == 1 and cells[0][1]:
            return cells[0][0]
        return None

    def _refine_operand(self, state: AbstractState, expr: I.Expr, op: str,
                        other: CellValue, sid: int, loc: Location,
                        swap: bool) -> AbstractState:
        cell = self._single_cell(state, expr, sid, loc)
        if cell is None or cell.volatile or cell.is_summary:
            return state
        v = state.env.get(cell.cid)
        if v is None:
            return state
        new_itv = _refine_interval(v.itv, op, other)
        if new_itv == v.itv:
            return state
        nv = CellValue(new_itv, v.minus_clock, v.plus_clock)
        if nv.is_bottom:
            return state.to_bottom()
        return state.set_cell(cell.cid, nv)

    def _form_of(self, state: AbstractState, expr: I.Expr) -> Optional[LinearForm]:
        """Linear form of an integer expression (for octagon guards over
        integer counters); floats already carry forms from evaluation."""
        if isinstance(expr, I.Const):
            return LinearForm.constant(FloatInterval.const(float(expr.value)))
        if isinstance(expr, I.Load):
            _, cells = self.tr.resolve_lvalue(state, expr.lval, 0, _DUMMY_LOC)
            if len(cells) == 1 and cells[0][1] and not cells[0][0].volatile:
                return LinearForm.var(cells[0][0].cid)
            return None
        if isinstance(expr, I.Cast):
            return self._form_of(state, expr.arg)
        if isinstance(expr, I.UnaryOp) and expr.op == "neg":
            inner = self._form_of(state, expr.arg)
            return inner.neg() if inner is not None else None
        if isinstance(expr, I.BinOp) and expr.op in ("add", "sub"):
            a = self._form_of(state, expr.left)
            b = self._form_of(state, expr.right)
            if a is None or b is None:
                return None
            return a.add(b) if expr.op == "add" else a.sub(b)
        if isinstance(expr, I.BinOp) and expr.op == "mul":
            if isinstance(expr.left, I.Const):
                inner = self._form_of(state, expr.right)
                return inner.scale(FloatInterval.const(float(expr.left.value))) \
                    if inner is not None else None
            if isinstance(expr.right, I.Const):
                inner = self._form_of(state, expr.left)
                return inner.scale(FloatInterval.const(float(expr.right.value))) \
                    if inner is not None else None
        return None

    def _guard_linear(self, state: AbstractState, op: str, lf: LinearForm,
                      rf: LinearForm, sid: int, loc: Location) -> AbstractState:
        """Refine from ``lf op rf`` via the difference form."""
        if op == "ne":
            return state  # no interval information in general
        diff = lf.sub(rf)  # constraint: diff op 0
        if op in ("lt", "le"):
            state = self._apply_upper(state, diff, strict=(op == "lt"), sid=sid,
                                      loc=loc)
        elif op in ("gt", "ge"):
            state = self._apply_upper(state, diff.neg(), strict=(op == "gt"),
                                      sid=sid, loc=loc)
        elif op == "eq":
            state = self._apply_upper(state, diff, strict=False, sid=sid, loc=loc)
            if not state.is_bottom:
                state = self._apply_upper(state, diff.neg(), strict=False,
                                          sid=sid, loc=loc)
        return state

    def _apply_upper(self, state: AbstractState, form: LinearForm, strict: bool,
                     sid: int, loc: Location) -> AbstractState:
        """Constraint: form <= 0 (or < 0)."""
        lookup = self.tr.lookup_form_var(state)
        # Backward interval refinement: solve for each unit variable.
        for cid, coeff in form.coeffs:
            if not coeff.is_const or coeff.lo == 0.0:
                continue
            cell = self.ctx.table.cell(cid)
            if cell.volatile or cell.is_summary:
                continue
            rest = LinearForm(tuple((v, c) for v, c in form.coeffs if v != cid),
                              form.const)
            rest_iv = rest.evaluate(lookup)
            if rest_iv.is_empty:
                continue
            # coeff * v + rest <= 0  =>  v <= -rest/coeff (coeff > 0).
            c = coeff.lo
            bound_iv = rest_iv.neg().div(FloatInterval.const(c))
            v = state.env.get(cid)
            if v is None:
                continue
            if c > 0:
                new_itv = _upper_bound(v.itv, bound_iv.hi, strict)
            else:
                new_itv = _lower_bound(v.itv, bound_iv.lo, strict)
            if new_itv == v.itv:
                continue
            nv = CellValue(new_itv, v.minus_clock, v.plus_clock)
            if nv.is_bottom:
                return state.to_bottom()
            state = state.set_cell(cid, nv)
        # Octagon injection: need all-unit coefficients.
        if self.ctx.config.enable_octagons:
            state = self._inject_octagon(state, form, sid, loc)
        return state

    def _inject_octagon(self, state: AbstractState, form: LinearForm,
                        sid: int, loc: Location) -> AbstractState:
        signs: Dict[int, int] = {}
        for cid, coeff in form.coeffs:
            if coeff.is_const and coeff.lo in (1.0, -1.0):
                signs[cid] = int(coeff.lo)
            else:
                return state  # non-unit coefficient: not octagonal
        if not signs or len(signs) > 2:
            # Try pack-local projections: intervalize out-of-pack terms.
            pass
        involved = list(signs)
        lookup = self.tr.lookup_form_var(state)
        pack_ids = set()
        for cid in involved:
            pack_ids.update(self.ctx.oct_packs.packs_of_cell(cid))
        for pack_id in pack_ids:
            pack = self.ctx.oct_packs.pack(pack_id)
            index = pack.index_of()
            in_pack = {cid: s for cid, s in signs.items() if cid in index}
            if not in_pack or len(in_pack) > 2:
                continue
            # Intervalize out-of-pack variables into the bound.
            residue = form.const
            for cid, coeff in form.coeffs:
                if cid not in in_pack:
                    residue = residue.add(coeff.mul(lookup(cid)))
            if residue.is_empty or residue.lo == -math.inf:
                continue
            bound = -residue.lo  # sum_in_pack <= -residue.lo
            oct_ = state.octagons.get(pack_id)
            if oct_ is None:
                continue
            coeffs = {index[cid]: s for cid, s in in_pack.items()}
            seed = {index[cid]: lookup(cid) for cid in in_pack}
            refined = oct_.guard_upper(coeffs, bound, seed_bounds=seed)
            if refined.is_bottom:
                return state.to_bottom()
            if refined is not oct_:
                state = state._with(octagons=state.octagons.set(pack_id, refined))
        return state


_DUMMY_LOC = Location("<guard>", 0, 0)


def _negate_cmp(op: str) -> str:
    return {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt",
            "eq": "ne", "ne": "eq"}[op]


def _swap_cmp(op: str) -> str:
    return {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le",
            "eq": "eq", "ne": "ne"}[op]


def _op_type(left: I.Expr, right: I.Expr):
    from .transfer import _expr_ctype

    lt = _expr_ctype(left)
    rt = _expr_ctype(right)
    if isinstance(lt, FloatType):
        return lt
    if isinstance(rt, FloatType):
        return rt
    return lt


def _refine_interval(itv, op: str, other: CellValue):
    """Refine ``itv`` knowing ``itv op other`` holds."""
    if isinstance(itv, IntInterval):
        o = other.itv if isinstance(other.itv, IntInterval) else \
            IntInterval.from_float_interval(other.float_range())
        if o.is_empty:
            return itv
        if op == "lt":
            return itv.restrict_lt(o.hi) if o.hi is not None else itv
        if op == "le":
            return itv.restrict_le(o.hi) if o.hi is not None else itv
        if op == "gt":
            return itv.restrict_gt(o.lo) if o.lo is not None else itv
        if op == "ge":
            return itv.restrict_ge(o.lo) if o.lo is not None else itv
        if op == "eq":
            return itv.meet(o)
        if op == "ne":
            return itv.restrict_ne(o.lo) if o.is_const else itv
        return itv
    o = other.float_range()
    if o.is_empty:
        return itv
    if op == "lt":
        return itv.restrict_lt(o.hi)
    if op == "le":
        return itv.restrict_le(o.hi)
    if op == "gt":
        return itv.restrict_gt(o.lo)
    if op == "ge":
        return itv.restrict_ge(o.lo)
    if op == "eq":
        return itv.meet(o)
    return itv  # ne: no refinement on floats


def _upper_bound(itv, hi: float, strict: bool):
    if isinstance(itv, IntInterval):
        if math.isinf(hi):
            return itv
        bound = math.floor(hi)
        if strict and bound == hi:
            bound -= 1
        return itv.restrict_le(bound)
    if strict:
        return itv.restrict_lt(hi)
    return itv.restrict_le(hi)


def _lower_bound(itv, lo: float, strict: bool):
    if isinstance(itv, IntInterval):
        if math.isinf(lo):
            return itv
        bound = math.ceil(lo)
        if strict and bound == lo:
            bound += 1
        return itv.restrict_ge(bound)
    if strict:
        return itv.restrict_gt(lo)
    return itv.restrict_ge(lo)
