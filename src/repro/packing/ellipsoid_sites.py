"""Detection of second-order filter sites for the ellipsoid domain.

The code shape of Sect. 6.2.3 (after lowering) is the statement triple::

    T := a*X - b*Y + t;   (rotate)
    Y := X;               (delay shift)
    X := T;               (commit)

with float constants ``0 < b < 1`` and ``a^2 - 4b < 0``.  "We looked
manually for such an invariant on typical examples, identified the above
generic form ... then designed a generic abstract domain eps(a,b) ... and
finally let the analyzer automatically instantiate the specific analysis to
the code (in particular to parts that may not have been inspected)."  This
module is that automatic instantiation: a syntactic scan of the lowered IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..frontend import ir as I
from ..frontend.c_types import FloatType
from ..memory.cells import CellTable
from .common import static_cell

__all__ = ["FilterSite", "FilterSites", "find_filter_sites"]


@dataclass(frozen=True)
class FilterSite:
    site_id: int
    a: float
    b: float
    x_cid: int        # the filter state X
    y_cid: int        # the delayed state Y
    t_cid: int        # the temporary X'
    rotate_sid: int   # sid of T := a*X - b*Y + t
    shift_sid: int    # sid of Y := X
    commit_sid: int   # sid of X := T
    # Terms whose interval sum bounds |t| at rotation time: each is a
    # (coefficient, payload) pair where the payload is either an IR
    # expression or an int cell id (evaluated from the environment).
    t_terms: Tuple[Tuple[float, object], ...]
    fmt_name: str = "binary32"

    @property
    def member_sids(self) -> Tuple[int, int, int]:
        return (self.rotate_sid, self.shift_sid, self.commit_sid)


class FilterSites:
    def __init__(self, sites: Sequence[FilterSite]):
        self.sites: List[FilterSite] = list(sites)
        self.by_sid: Dict[int, FilterSite] = {}
        self.member_sids: Set[int] = set()
        self.by_written_cell: Dict[int, Tuple[int, ...]] = {}
        by_cell: Dict[int, List[int]] = {}
        for s in self.sites:
            self.by_sid[s.rotate_sid] = s
            self.by_sid[s.commit_sid] = s
            self.member_sids.update(s.member_sids)
            for cid in (s.x_cid, s.y_cid):
                by_cell.setdefault(cid, []).append(s.site_id)
        self.by_written_cell = {c: tuple(v) for c, v in by_cell.items()}
        self._by_id = {s.site_id: s for s in self.sites}

    def site(self, site_id: int) -> FilterSite:
        return self._by_id[site_id]

    def sites_writing(self, cid: int) -> Tuple[int, ...]:
        return self.by_written_cell.get(cid, ())

    def __len__(self) -> int:
        return len(self.sites)


def find_filter_sites(prog: I.IRProgram, table: CellTable) -> FilterSites:
    sites: List[FilterSite] = []
    counter = [0]

    def visit(stmts: Sequence[I.Stmt]) -> None:
        for idx, s in enumerate(stmts):
            if isinstance(s, I.SIf):
                visit(s.then)
                visit(s.other)
            elif isinstance(s, I.SWhile):
                visit(s.body)
                visit(s.step)
            elif isinstance(s, I.SSwitch):
                for _, body in s.cases:
                    visit(body)
            if not isinstance(s, I.SAssign):
                continue
            site = _match_triple(stmts, idx, table, counter)
            if site is not None:
                sites.append(site)

    for fn in prog.functions.values():
        if fn.body is not None:
            visit(fn.body)
    return FilterSites(sites)


def _match_triple(stmts: Sequence[I.Stmt], idx: int, table: CellTable,
                  counter) -> Optional[FilterSite]:
    if idx + 2 >= len(stmts):
        return None
    s1, s2, s3 = stmts[idx], stmts[idx + 1], stmts[idx + 2]
    if not (isinstance(s1, I.SAssign) and isinstance(s2, I.SAssign)
            and isinstance(s3, I.SAssign)):
        return None
    t_cell = static_cell(s1.target, table)
    y_cell = static_cell(s2.target, table)
    x_cell = static_cell(s3.target, table)
    if t_cell is None or y_cell is None or x_cell is None:
        return None
    if not (t_cell.is_float and y_cell.is_float and x_cell.is_float):
        return None
    # s2 must be Y := X and s3 must be X := T.
    if not _is_copy_of(s2.value, x_cell, table):
        return None
    if not _is_copy_of(s3.value, t_cell, table):
        return None
    if len({t_cell.cid, y_cell.cid, x_cell.cid}) != 3:
        return None
    decomp = _decompose_affine(s1.value, table)
    if decomp is None:
        return None
    coeffs, t_terms = decomp
    a = coeffs.get(x_cell.cid)
    minus_b = coeffs.get(y_cell.cid)
    if a is None or minus_b is None:
        return None
    b = -minus_b
    if not (0.0 < b < 1.0 and a * a - 4.0 * b < 0.0):
        return None
    # Remaining coefficient cells go to the t part as full expressions.
    t_all: List[Tuple[float, object]] = list(t_terms)
    for cid, c in coeffs.items():
        if cid not in (x_cell.cid, y_cell.cid):
            t_all.append((c, cid))  # evaluated from the cell's interval
    fmt = x_cell.ctype.fmt.name if isinstance(x_cell.ctype, FloatType) else "binary32"
    site = FilterSite(
        site_id=counter[0], a=float(a), b=float(b),
        x_cid=x_cell.cid, y_cid=y_cell.cid, t_cid=t_cell.cid,
        rotate_sid=s1.sid, shift_sid=s2.sid, commit_sid=s3.sid,
        t_terms=tuple(t_all), fmt_name=fmt,
    )
    counter[0] += 1
    return site


def _is_copy_of(expr: I.Expr, cell, table: CellTable) -> bool:
    while isinstance(expr, I.Cast):
        expr = expr.arg
    if isinstance(expr, I.Load):
        c = static_cell(expr.lval, table)
        return c is not None and c.cid == cell.cid
    return False


def _decompose_affine(expr: I.Expr, table: CellTable):
    """Decompose into (cell -> constant coefficient, extra terms).

    Returns None when the expression is not a sum of const*cell terms plus
    arbitrary extra terms.  Extra terms are kept as (sign, expr) pairs for
    run-time interval bounding of |t|.
    """
    coeffs: Dict[int, float] = {}
    extras: List[Tuple[float, I.Expr]] = []

    def go(e: I.Expr, sign: float) -> bool:
        while isinstance(e, I.Cast):
            e = e.arg
        if isinstance(e, I.BinOp) and e.op == "add":
            return go(e.left, sign) and go(e.right, sign)
        if isinstance(e, I.BinOp) and e.op == "sub":
            return go(e.left, sign) and go(e.right, -sign)
        if isinstance(e, I.UnaryOp) and e.op == "neg":
            return go(e.arg, -sign)
        if isinstance(e, I.BinOp) and e.op == "mul":
            lc = _const_of(e.left)
            rc = _const_of(e.right)
            if lc is not None and rc is None:
                inner = _cell_of(e.right, table)
                if inner is not None:
                    coeffs[inner] = coeffs.get(inner, 0.0) + sign * lc
                    return True
            if rc is not None and lc is None:
                inner = _cell_of(e.left, table)
                if inner is not None:
                    coeffs[inner] = coeffs.get(inner, 0.0) + sign * rc
                    return True
            extras.append((sign, e))
            return True
        cell = _cell_of(e, table)
        if cell is not None:
            coeffs[cell] = coeffs.get(cell, 0.0) + sign
            return True
        extras.append((sign, e))
        return True

    if not go(expr, 1.0):
        return None
    return coeffs, extras


def _const_of(e: I.Expr) -> Optional[float]:
    while isinstance(e, I.Cast):
        e = e.arg
    if isinstance(e, I.Const):
        return float(e.value)
    return None


def _cell_of(e: I.Expr, table: CellTable) -> Optional[int]:
    while isinstance(e, I.Cast):
        e = e.arg
    if isinstance(e, I.Load):
        c = static_cell(e.lval, table)
        if c is not None:
            return c.cid
    return None


