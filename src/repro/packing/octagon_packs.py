"""Syntactic determination of octagon packs (Sect. 7.2.1).

"Our current strategy is to create one pack for each syntactic block in the
source code and put in the pack all variables that appear in a linear
assignment or test within the associated block, ignoring what happens in
sub-blocks of the block."

Packs are computed once, before the analysis starts.  The strategy yields a
linear number of constant-size octagons for the family, and the analyzer
reports per-pack usefulness so a subsequent run can restrict to useful
packs only (the packing optimization of Sect. 7.2.2, implemented by the
``restrict_octagon_packs`` configuration field).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..config import AnalyzerConfig
from ..frontend import ir as I
from ..memory.cells import CellTable
from .common import linear_cells, static_cell

__all__ = ["OctagonPack", "OctagonPacking", "compute_octagon_packs"]


@dataclass(frozen=True)
class OctagonPack:
    """One pack: an ordered tuple of distinct atomic cell ids."""

    pack_id: int
    cids: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.cids)

    def index_of(self) -> Dict[int, int]:
        return {cid: i for i, cid in enumerate(self.cids)}

    @property
    def key(self) -> Tuple[int, ...]:
        return self.cids


class OctagonPacking:
    """All octagon packs of a program plus reverse indexes."""

    def __init__(self, packs: Sequence[OctagonPack]):
        self.packs: List[OctagonPack] = list(packs)
        self.by_cell: Dict[int, Tuple[int, ...]] = {}
        by_cell: Dict[int, List[int]] = {}
        for p in self.packs:
            for cid in p.cids:
                by_cell.setdefault(cid, []).append(p.pack_id)
        self.by_cell = {cid: tuple(ids) for cid, ids in by_cell.items()}
        self._by_id = {p.pack_id: p for p in self.packs}

    def pack(self, pack_id: int) -> OctagonPack:
        return self._by_id[pack_id]

    def packs_of_cell(self, cid: int) -> Tuple[int, ...]:
        return self.by_cell.get(cid, ())

    def __len__(self) -> int:
        return len(self.packs)

    def average_size(self) -> float:
        if not self.packs:
            return 0.0
        return sum(p.size for p in self.packs) / len(self.packs)


def compute_octagon_packs(prog: I.IRProgram, table: CellTable,
                          config: AnalyzerConfig) -> OctagonPacking:
    """Block-level pack computation over the lowered IR."""
    # block id -> ordered cell ids (insertion order preserved for stability)
    blocks: Dict[int, Dict[int, None]] = {}

    def add_cells(block_id: int, cells) -> None:
        if cells is None:
            return
        bucket = blocks.setdefault(block_id, {})
        for c in cells:
            if c.is_summary or c.volatile:
                continue
            bucket.setdefault(c.cid, None)

    def visit(stmts: Sequence[I.Stmt]) -> None:
        for s in stmts:
            if isinstance(s, I.SAssign):
                cells = linear_cells(s.value, table)
                if cells is not None and cells:
                    target = static_cell(s.target, table)
                    if target is not None:
                        cells = cells + [target]
                    # Per Sect. 7.2.1 the pack takes ALL variables that
                    # appear in a linear assignment within the block —
                    # including single-variable ones; a pack materializes
                    # only if the block accumulates >= 2 variables, and
                    # most such packs turn out useless (the premise of
                    # the Sect. 7.2.2 optimization).
                    add_cells(s.block_id, cells)
            elif isinstance(s, I.SIf):
                add_cells(s.block_id, _test_cells(s.cond, table))
                visit(s.then)
                visit(s.other)
            elif isinstance(s, I.SWhile):
                add_cells(s.block_id, _test_cells(s.cond, table))
                visit(s.body)
                visit(s.step)
            elif isinstance(s, I.SSwitch):
                for _, body in s.cases:
                    visit(body)
            elif isinstance(s, (I.SAssume, I.SCheck)):
                add_cells(s.block_id, _test_cells(s.cond, table))

    for fn in prog.functions.values():
        if fn.body is not None:
            visit(fn.body)

    packs: List[OctagonPack] = []
    seen: Set[Tuple[int, ...]] = set()
    next_id = 0
    for block_id in sorted(blocks):
        cids = tuple(blocks[block_id])
        if len(cids) < 2:
            continue
        if len(cids) > config.max_octagon_pack_size:
            cids = cids[: config.max_octagon_pack_size]
        if cids in seen:
            continue
        if (config.restrict_octagon_packs is not None
                and cids not in config.restrict_octagon_packs):
            continue
        seen.add(cids)
        packs.append(OctagonPack(next_id, cids))
        next_id += 1
    return OctagonPacking(packs)


def _test_cells(cond: I.Expr, table: CellTable):
    """Cells of a linear comparison test (compound conditions visited
    structurally)."""
    if isinstance(cond, I.BinOp) and cond.is_comparison:
        cells = linear_cells(cond, table)
        if cells and len({c.cid for c in cells}) >= 2:
            return cells
        return None
    if isinstance(cond, I.BoolOp):
        left = _test_cells(cond.left, table) or []
        right = _test_cells(cond.right, table) or []
        combined = list(left) + list(right)
        return combined or None
    if isinstance(cond, I.NotOp):
        return _test_cells(cond.arg, table)
    return None
