"""Packing for decision trees (Sect. 7.2.3).

"Each time a numerical variable assignment depends on a boolean, or a
boolean assignment depends on a numerical variable, we put both variables
in a tentative pack.  If, later, we find a program point where the
numerical variable is inside a branch depending on the boolean, we mark the
pack as confirmed. ... if we find an assignment b := expr where expr is a
boolean expression, we add b to all packs containing a variable in expr.
In the end, we just keep the confirmed packs."

The number of boolean variables per pack is capped (the parameter whose
value three "yields an efficient and precise analysis of boolean
behavior").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import AnalyzerConfig
from ..frontend import ir as I
from ..memory.cells import CellTable
from .common import expr_cells, is_bool_cell, static_cell

__all__ = ["BoolPack", "BoolPacking", "compute_bool_packs"]


@dataclass(frozen=True)
class BoolPack:
    pack_id: int
    bool_cids: Tuple[int, ...]     # BDD variable order (sorted)
    numeric_cids: Tuple[int, ...]  # tracked numeric cells


class BoolPacking:
    def __init__(self, packs: Sequence[BoolPack]):
        self.packs: List[BoolPack] = list(packs)
        by_bool: Dict[int, List[int]] = {}
        by_numeric: Dict[int, List[int]] = {}
        for p in self.packs:
            for cid in p.bool_cids:
                by_bool.setdefault(cid, []).append(p.pack_id)
            for cid in p.numeric_cids:
                by_numeric.setdefault(cid, []).append(p.pack_id)
        self.by_bool = {c: tuple(v) for c, v in by_bool.items()}
        self.by_numeric = {c: tuple(v) for c, v in by_numeric.items()}
        self._by_id = {p.pack_id: p for p in self.packs}

    def pack(self, pack_id: int) -> BoolPack:
        return self._by_id[pack_id]

    def packs_of_bool(self, cid: int) -> Tuple[int, ...]:
        return self.by_bool.get(cid, ())

    def packs_of_numeric(self, cid: int) -> Tuple[int, ...]:
        return self.by_numeric.get(cid, ())

    def __len__(self) -> int:
        return len(self.packs)


class _Tentative:
    """A tentative pack under construction."""

    def __init__(self) -> None:
        self.bools: Set[int] = set()
        self.numerics: Set[int] = set()
        self.confirmed = False


def compute_bool_packs(prog: I.IRProgram, table: CellTable,
                       config: AnalyzerConfig) -> BoolPacking:
    tentative: Dict[int, _Tentative] = {}  # keyed by a representative bool cid

    def pack_of(bool_cid: int) -> _Tentative:
        if bool_cid not in tentative:
            tentative[bool_cid] = _Tentative()
            tentative[bool_cid].bools.add(bool_cid)
        return tentative[bool_cid]

    def classify(cids: Set[int]) -> Tuple[Set[int], Set[int]]:
        bools, numerics = set(), set()
        for cid in cids:
            cell = table.cell(cid)
            if cell.is_summary:
                continue
            if is_bool_cell(cell):
                bools.add(cid)
            else:
                numerics.add(cid)
        return bools, numerics

    # Pass 1: tentative packs from data dependences.
    def scan(stmts: Sequence[I.Stmt], guard_bools: Tuple[int, ...]) -> None:
        for s in stmts:
            if isinstance(s, I.SAssign):
                target = static_cell(s.target, table)
                if target is None or target.is_summary:
                    continue
                rhs_bools, rhs_numerics = classify(expr_cells(s.value, table))
                if is_bool_cell(target):
                    # b := expr with numeric dependence -> tentative pack.
                    for num in rhs_numerics:
                        p = pack_of(target.cid)
                        p.numerics.add(num)
                    # b := boolean expr -> add b to packs containing them.
                    for b in rhs_bools:
                        p = pack_of(b)
                        p.bools.add(target.cid)
                else:
                    # numeric := expr depending on a boolean.
                    for b in rhs_bools:
                        p = pack_of(b)
                        p.numerics.add(target.cid)
                    # Confirmation: numeric assigned under a boolean guard.
                    for b in guard_bools:
                        p = pack_of(b)
                        if target.cid in p.numerics or rhs_numerics & p.numerics:
                            p.numerics.add(target.cid)
                            p.confirmed = True
            elif isinstance(s, I.SIf):
                cond_bools, cond_numerics = classify(expr_cells(s.cond, table))
                # A numeric read inside a bool-guarded branch confirms too
                # (the division guard pattern reads, not writes).
                inner_guards = guard_bools + tuple(cond_bools)
                for b in cond_bools:
                    p = pack_of(b)
                    if cond_numerics:
                        p.numerics |= cond_numerics
                scan(s.then, inner_guards)
                scan(s.other, inner_guards)
                # Confirm packs whose numerics are touched in the branches.
                touched = _cells_touched(s.then, table) | _cells_touched(s.other, table)
                for b in cond_bools:
                    p = pack_of(b)
                    if p.numerics & touched:
                        p.confirmed = True
            elif isinstance(s, I.SWhile):
                scan(s.body, guard_bools)
                scan(s.step, guard_bools)
            elif isinstance(s, I.SSwitch):
                for _, body in s.cases:
                    scan(body, guard_bools)

    for fn in prog.functions.values():
        if fn.body is not None:
            scan(fn.body, ())

    packs: List[BoolPack] = []
    seen: Set[Tuple[Tuple[int, ...], Tuple[int, ...]]] = set()
    next_id = 0
    for rep, t in sorted(tentative.items()):
        if not t.confirmed or not t.numerics:
            continue
        bools = tuple(sorted(t.bools))[: config.max_bool_pack_bools]
        numerics = tuple(sorted(t.numerics))[: config.max_bool_pack_numerics]
        key = (bools, numerics)
        if key in seen:
            continue
        seen.add(key)
        packs.append(BoolPack(next_id, bools, numerics))
        next_id += 1
    return BoolPacking(packs)


def _cells_touched(stmts: Sequence[I.Stmt], table: CellTable) -> Set[int]:
    out: Set[int] = set()
    for s in I.iter_stmts(stmts):
        if isinstance(s, I.SAssign):
            cell = static_cell(s.target, table)
            if cell is not None:
                out.add(cell.cid)
            out |= expr_cells(s.value, table)
        elif isinstance(s, (I.SIf, I.SWhile)):
            out |= expr_cells(s.cond, table)
    return out
