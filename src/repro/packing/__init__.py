"""Parametrized packing strategies (Sect. 7.2)."""

from .boolean_packs import BoolPack, BoolPacking, compute_bool_packs
from .ellipsoid_sites import FilterSite, FilterSites, find_filter_sites
from .octagon_packs import OctagonPack, OctagonPacking, compute_octagon_packs

__all__ = [
    "BoolPack",
    "BoolPacking",
    "FilterSite",
    "FilterSites",
    "OctagonPack",
    "OctagonPacking",
    "compute_bool_packs",
    "compute_octagon_packs",
    "find_filter_sites",
]
