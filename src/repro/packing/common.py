"""Shared syntactic helpers for the packing strategies (Sect. 7.2)."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..frontend import ir as I
from ..memory.cells import (
    AtomicLayout, CellInfo, CellTable, ExpandedArrayLayout, RecordLayout,
)

__all__ = ["static_cell", "linear_cells", "expr_cells", "is_bool_cell"]


def static_cell(lv: I.LValue, table: CellTable) -> Optional[CellInfo]:
    """Resolve an l-value to a single atomic cell when statically possible.

    Returns None for summary cells, dynamic indices and pointer derefs
    (those cannot participate in relational packs).
    """
    layout = _static_layout(lv, table)
    if isinstance(layout, AtomicLayout):
        return layout.cell
    return None


def _static_layout(lv: I.LValue, table: CellTable):
    if isinstance(lv, I.LVar):
        if not table.has_var(lv.var.uid):
            return None
        return table.layout(lv.var.uid)
    if isinstance(lv, I.LField):
        base = _static_layout(lv.base, table)
        if isinstance(base, RecordLayout):
            try:
                return base.field(lv.fieldname)
            except KeyError:
                return None
        return None
    if isinstance(lv, I.LIndex):
        base = _static_layout(lv.base, table)
        if isinstance(base, ExpandedArrayLayout) and isinstance(lv.index, I.Const):
            idx = int(lv.index.value)
            if 0 <= idx < base.length:
                return base.elements[idx]
        return None
    return None  # LDeref: resolved only at call time


def linear_cells(expr: I.Expr, table: CellTable) -> Optional[List[CellInfo]]:
    """Cells of a *syntactically linear* expression, or None when the
    expression is not linear (Sect. 7.2.1 considers only linear
    assignments and tests when building octagon packs)."""
    cells: List[CellInfo] = []
    if _collect_linear(expr, table, cells):
        return cells
    return None


def _collect_linear(expr: I.Expr, table: CellTable, out: List[CellInfo]) -> bool:
    if isinstance(expr, I.Const):
        return True
    if isinstance(expr, I.Load):
        cell = static_cell(expr.lval, table)
        if cell is None:
            return False
        out.append(cell)
        return True
    if isinstance(expr, I.Cast):
        return _collect_linear(expr.arg, table, out)
    if isinstance(expr, I.UnaryOp) and expr.op == "neg":
        return _collect_linear(expr.arg, table, out)
    if isinstance(expr, I.BinOp):
        if expr.op in ("add", "sub"):
            return (_collect_linear(expr.left, table, out)
                    and _collect_linear(expr.right, table, out))
        if expr.op == "mul":
            if isinstance(expr.left, I.Const):
                return _collect_linear(expr.right, table, out)
            if isinstance(expr.right, I.Const):
                return _collect_linear(expr.left, table, out)
            return False
        if expr.op == "div" and isinstance(expr.right, I.Const):
            return _collect_linear(expr.left, table, out)
        if expr.is_comparison:
            return (_collect_linear(expr.left, table, out)
                    and _collect_linear(expr.right, table, out))
    return False


def expr_cells(expr: I.Expr, table: CellTable) -> Set[int]:
    """All statically resolvable cells read by an expression."""
    out: Set[int] = set()

    def go(e: I.Expr) -> None:
        if isinstance(e, I.Load):
            cell = static_cell(e.lval, table)
            if cell is not None:
                out.add(cell.cid)
            if isinstance(e.lval, I.LIndex):
                go(e.lval.index)
        elif isinstance(e, I.UnaryOp):
            go(e.arg)
        elif isinstance(e, I.BinOp):
            go(e.left)
            go(e.right)
        elif isinstance(e, I.BoolOp):
            go(e.left)
            go(e.right)
        elif isinstance(e, I.NotOp):
            go(e.arg)
        elif isinstance(e, I.Cast):
            go(e.arg)

    go(expr)
    return out


def is_bool_cell(cell: CellInfo) -> bool:
    """Heuristic: _Bool cells and 8-bit integers are boolean-like.

    The family's generated code stores test results into variables declared
    with a boolean typedef (lowered to _Bool or unsigned char).
    """
    from ..frontend.c_types import EnumType, IntType

    t = cell.ctype
    return isinstance(t, IntType) and t.bits == 8
