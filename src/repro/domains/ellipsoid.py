"""The ellipsoid abstract domain for second-order digital filters (Sect. 6.2.3).

Filters of the shape::

    if (B) { Y := i; X := j; }
    else   { X' := a*X - b*Y + t;  Y := X;  X := X'; }

with float constants ``a``, ``b`` satisfying ``0 < b < 1`` and
``a^2 - 4b < 0`` keep no interval invariant (the affine map's spectral
radius argument needs a quadratic form).  Proposition 1: if
``k >= (t_M / (1 - sqrt(b)))^2`` then ``X^2 - a*X*Y + b*Y^2 <= k`` is
preserved by the affine transformation.

The domain element for one filter instance is the bound ``k`` (``+inf`` is
top, and an empty/unreachable state is represented at the environment
level).  The rotation transfer function is the paper's delta::

    delta(k) = ((sqrt(b) + 4*f*(|a|*sqrt(b) + b)/sqrt(4b - a^2)) * sqrt(k)
                + (1 + f) * t_M)^2

where ``f`` is the greatest relative float error, accounting for the
concrete rounding in ``a*X - b*Y + t``.  Reduction against the interval
domain works both ways:

* from intervals: ``k <= max over the box of X^2 - a*X*Y + b*Y^2``
  (and the tighter ``(1 - a + b) * X^2`` bound when ``X = Y``);
* to intervals: ``|X| <= 2*sqrt(b*k / (4b - a^2))`` and
  ``|Y| <= 2*sqrt(k / (4b - a^2))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..numeric import BINARY32, FloatFormat, FloatInterval
from ..numeric.float_utils import (
    add_up, div_up, mul_up, sqrt_up, sub_down,
)

__all__ = ["EllipsoidParams", "EllipsoidValue"]

_INF = math.inf


@dataclass(frozen=True)
class EllipsoidParams:
    """The (a, b) filter coefficients plus the float error model."""

    a: float
    b: float
    t_max: float  # bound on |t| (from the interval analysis of t)
    fmt: FloatFormat = BINARY32

    def __post_init__(self):
        if not (0.0 < self.b < 1.0):
            raise ValueError(f"ellipsoid domain requires 0 < b < 1, got b={self.b}")
        if not (self.a * self.a - 4.0 * self.b < 0.0):
            raise ValueError(
                f"ellipsoid domain requires a^2 - 4b < 0, got a={self.a}, b={self.b}")
        if self.t_max < 0.0:
            raise ValueError("t_max must be nonnegative")

    @property
    def discriminant(self) -> float:
        """4b - a^2 > 0 (rounded down for sound use in denominators)."""
        return sub_down(mul_up(4.0, self.b), mul_up(self.a, self.a))

    def stable_k(self) -> float:
        """The smallest provably-invariant bound (t_M / (1 - sqrt b))^2."""
        denom = sub_down(1.0, sqrt_up(self.b))
        if denom <= 0.0:
            return _INF
        q = div_up(self.t_max, denom)
        return mul_up(q, q)

    def delta(self, k: float) -> float:
        """Sound bound on the quadratic form after one filter rotation."""
        if k == _INF:
            return _INF
        if k < 0.0:
            k = 0.0
        f = self.fmt.rel_err
        disc = self.discriminant
        if disc <= 0.0:
            return _INF
        # sqrt(b) + 4f(|a| sqrt(b) + b) / sqrt(4b - a^2)
        sb = sqrt_up(self.b)
        num = mul_up(4.0 * f, add_up(mul_up(abs(self.a), sb), self.b))
        coeff = add_up(sb, div_up(num, math.sqrt(disc)))
        grown = add_up(mul_up(coeff, sqrt_up(k)), mul_up(add_up(1.0, f), self.t_max))
        return mul_up(grown, grown)


@dataclass(frozen=True)
class EllipsoidValue:
    """One ellipsoidal constraint X^2 - a*X*Y + b*Y^2 <= k."""

    params: EllipsoidParams
    k: float  # +inf is top

    @staticmethod
    def top(params: EllipsoidParams) -> "EllipsoidValue":
        return EllipsoidValue(params, _INF)

    @property
    def is_top(self) -> bool:
        return self.k == _INF

    # -- transfer functions ------------------------------------------------------

    def rotate(self) -> "EllipsoidValue":
        """X' := a*X - b*Y + t; the constraint moves to the pair (X', X)."""
        return EllipsoidValue(self.params, self.params.delta(self.k))

    def reinitialize(self, x_iv: FloatInterval, y_iv: FloatInterval) -> "EllipsoidValue":
        """The if-branch: X := j, Y := i with known intervals — take the
        interval-based reduction as the new constraint."""
        return self.reduce_from_intervals(x_iv, y_iv, replace=True)

    # -- reductions ---------------------------------------------------------------

    def reduce_from_intervals(self, x_iv: FloatInterval, y_iv: FloatInterval,
                              replace: bool = False,
                              equal_vars: bool = False) -> "EllipsoidValue":
        """Tighten k from interval bounds on X and Y (Sect. 6.2.3's
        reduction step with the interval domain)."""
        if x_iv.is_empty or y_iv.is_empty:
            return self
        p = self.params
        if equal_vars:
            # X = Y: form evaluates to (1 - a + b) * X^2.
            mag = x_iv.magnitude()
            if math.isinf(mag):
                k_box = _INF
            else:
                coeff = add_up(add_up(1.0, -p.a), p.b)
                if coeff < 0.0:
                    coeff = 0.0
                k_box = mul_up(mul_up(coeff, mag), mag)
        else:
            mx, my = x_iv.magnitude(), y_iv.magnitude()
            if math.isinf(mx) or math.isinf(my):
                k_box = _INF
            else:
                # Upper bound of X^2 - aXY + bY^2 over the box (coarse but
                # sound: |X|^2 + |a||X||Y| + b|Y|^2).
                k_box = add_up(
                    add_up(mul_up(mx, mx), mul_up(mul_up(abs(p.a), mx), my)),
                    mul_up(mul_up(p.b, my), my),
                )
        new_k = k_box if replace else min(self.k, k_box)
        if new_k == self.k and not replace:
            return self
        return EllipsoidValue(p, new_k)

    def x_bound(self) -> FloatInterval:
        """|X| <= 2*sqrt(b*k/(4b - a^2)) (used to reduce the intervals)."""
        if self.is_top:
            return FloatInterval.top()
        disc = self.params.discriminant
        if disc <= 0.0 or self.k < 0.0:
            return FloatInterval.top()
        r = mul_up(2.0, sqrt_up(div_up(mul_up(self.params.b, self.k), disc)))
        return FloatInterval.of(-r, r)

    def y_bound(self) -> FloatInterval:
        """|Y| <= 2*sqrt(k/(4b - a^2))."""
        if self.is_top:
            return FloatInterval.top()
        disc = self.params.discriminant
        if disc <= 0.0 or self.k < 0.0:
            return FloatInterval.top()
        r = mul_up(2.0, sqrt_up(div_up(self.k, disc)))
        return FloatInterval.of(-r, r)

    # -- lattice --------------------------------------------------------------------

    def join(self, other: "EllipsoidValue") -> "EllipsoidValue":
        return EllipsoidValue(self.params, max(self.k, other.k))

    def meet(self, other: "EllipsoidValue") -> "EllipsoidValue":
        return EllipsoidValue(self.params, min(self.k, other.k))

    def widen(self, other: "EllipsoidValue",
              thresholds: Optional[Sequence[float]] = None) -> "EllipsoidValue":
        if other.k <= self.k:
            return self
        if thresholds is None:
            return EllipsoidValue(self.params, _INF)
        for t in thresholds:
            if t >= other.k:
                return EllipsoidValue(self.params, t)
        return EllipsoidValue(self.params, _INF)

    def narrow(self, other: "EllipsoidValue") -> "EllipsoidValue":
        if self.is_top:
            return other
        return self

    def includes(self, other: "EllipsoidValue") -> bool:
        return self.k >= other.k

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Ellipse(a={self.params.a}, b={self.params.b}, "
                f"k={'inf' if self.is_top else self.k})")
