"""The decision tree abstract domain (Sect. 6.2.4).

Relates boolean variables to numeric variables: "we implemented a simple
relational domain consisting in a decision tree with leaf an arithmetic
abstract domain.  The decision trees are reduced by ordering boolean
variables (as in [BDDs]) and by performing some opportunistic sharing of
subtrees."

A tree over a *pack* (an ordered tuple of boolean cell ids plus a set of
tracked numeric cell ids) maps each boolean valuation to interval
information about the numeric cells.  Leaves are small dicts
``cid -> interval`` where a missing cid means "no information" (top);
an explicitly-``None`` leaf denotes an unreachable boolean valuation
(bottom).

The motivating pattern::

    B := (X == 0);
    if (!B) { Y := 1 / X; }

is handled by :meth:`DecisionTree.assign_bool` — which splits on the two
outcomes of the condition, recording the numeric refinement under each —
and :meth:`DecisionTree.guard_bool` — which prunes valuations and returns
the join of the surviving numeric refinements for interval reduction
(here: ``X != 0`` on the ``!B`` branch, killing the division alarm).

The size cap on boolean pack membership (Sect. 7.2.3: "setting this
parameter to three yields an efficient and precise analysis") lives in the
packing strategy, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from ..numeric import FloatInterval, IntInterval

__all__ = ["DecisionTree", "Leaf", "Node"]

Interval = Union[IntInterval, FloatInterval]
LeafValues = Optional[Dict[int, Interval]]  # None = unreachable valuation


@dataclass(frozen=True)
class Leaf:
    """Numeric information valid under one set of boolean valuations.

    ``values`` maps numeric cell ids to intervals; missing = top.
    ``values is None`` marks the valuation unreachable.
    """

    values: LeafValues

    @property
    def is_bottom(self) -> bool:
        return self.values is None


@dataclass(frozen=True)
class Node:
    """Split on a boolean cell: ``low`` when 0, ``high`` when nonzero."""

    var: int
    low: "Tree"
    high: "Tree"


Tree = Union[Leaf, Node]

_TOP_LEAF = Leaf({})
_BOTTOM_LEAF = Leaf(None)


def _mk_node(var: int, low: Tree, high: Tree) -> Tree:
    """Opportunistic sharing: collapse identical branches."""
    if low is high:
        return low
    if isinstance(low, Leaf) and isinstance(high, Leaf) and low.values == high.values:
        return low
    return Node(var, low, high)


def _apply(a: Tree, b: Tree, f: Callable[[LeafValues, LeafValues], LeafValues],
           order: Sequence[int]) -> Tree:
    """BDD-style apply over two ordered trees."""
    if a is b and isinstance(a, Leaf):
        return a
    if isinstance(a, Leaf) and isinstance(b, Leaf):
        out = f(a.values, b.values)
        if out is None:
            return _BOTTOM_LEAF
        if not out:
            return _TOP_LEAF
        return Leaf(out)
    pos = {v: i for i, v in enumerate(order)}
    av = pos[a.var] if isinstance(a, Node) else len(order)
    bv = pos[b.var] if isinstance(b, Node) else len(order)
    if av < bv:
        assert isinstance(a, Node)
        return _mk_node(a.var, _apply(a.low, b, f, order), _apply(a.high, b, f, order))
    if bv < av:
        assert isinstance(b, Node)
        return _mk_node(b.var, _apply(a, b.low, f, order), _apply(a, b.high, f, order))
    assert isinstance(a, Node) and isinstance(b, Node)
    return _mk_node(a.var, _apply(a.low, b.low, f, order),
                    _apply(a.high, b.high, f, order))


def _map_leaves(t: Tree, f: Callable[[LeafValues], LeafValues]) -> Tree:
    if isinstance(t, Leaf):
        out = f(t.values)
        if out is None:
            return _BOTTOM_LEAF
        if not out:
            return _TOP_LEAF
        return Leaf(out)
    return _mk_node(t.var, _map_leaves(t.low, f), _map_leaves(t.high, f))


def _join_values(a: LeafValues, b: LeafValues) -> LeafValues:
    if a is None:
        return b
    if b is None:
        return a
    out: Dict[int, Interval] = {}
    for cid, iv in a.items():
        if cid in b:
            out[cid] = iv.join(b[cid])
    return out


def _widen_values(a: LeafValues, b: LeafValues, thresholds) -> LeafValues:
    if a is None:
        return b
    if b is None:
        return a
    out: Dict[int, Interval] = {}
    for cid, iv in a.items():
        if cid in b:
            w = iv.widen(b[cid], thresholds)
            if not _is_top(w):
                out[cid] = w
    return out


def _meet_values(a: LeafValues, b: LeafValues) -> LeafValues:
    if a is None or b is None:
        return None
    out: Dict[int, Interval] = dict(a)
    for cid, iv in b.items():
        cur = out.get(cid)
        m = iv if cur is None else cur.meet(iv)
        if m.is_empty:
            return None
        out[cid] = m
    return out


def _is_top(iv: Interval) -> bool:
    return iv.is_top


class DecisionTree:
    """A decision tree over one boolean pack.

    ``bool_order`` fixes the BDD variable order (the pack's boolean cell
    ids, sorted).  ``numeric_cids`` is the set of numeric cells tracked at
    the leaves.
    """

    __slots__ = ("bool_order", "numeric_cids", "root")

    def __init__(self, bool_order: Tuple[int, ...],
                 numeric_cids: Tuple[int, ...], root: Tree = _TOP_LEAF):
        self.bool_order = tuple(bool_order)
        self.numeric_cids = tuple(numeric_cids)
        self.root = root

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def top(bool_order: Sequence[int], numeric_cids: Sequence[int]) -> "DecisionTree":
        return DecisionTree(tuple(bool_order), tuple(numeric_cids))

    def _with(self, root: Tree) -> "DecisionTree":
        if root is self.root:
            return self
        return DecisionTree(self.bool_order, self.numeric_cids, root)

    @property
    def is_top(self) -> bool:
        return isinstance(self.root, Leaf) and self.root.values == {}

    @property
    def is_bottom(self) -> bool:
        return isinstance(self.root, Leaf) and self.root.is_bottom

    # -- transfer functions --------------------------------------------------------

    def assign_bool(self, b: int, true_values: LeafValues,
                    false_values: LeafValues) -> "DecisionTree":
        """``b := cond``: record the numeric facts under each outcome.

        ``true_values``/``false_values`` are the numeric refinements valid
        when the condition is true/false (None = outcome impossible).
        Existing information about other booleans is preserved; existing
        numeric info on this pack's leaves is kept (met with the new facts).
        """
        if b not in self.bool_order:
            return self
        # Forget previous facts conditioned on b, then re-split.
        merged = self._forget_bool_tree(b)
        return self._with(_insert_bool(merged, b, false_values, true_values,
                                       self.bool_order))

    def guard_bool(self, b: int, value: bool) -> "DecisionTree":
        """Restrict to valuations where boolean ``b`` is ``value``."""
        if b not in self.bool_order:
            return self
        return self._with(_restrict(self.root, b, value, self.bool_order))

    def numeric_refinement(self) -> Dict[int, Interval]:
        """Join of leaf facts over all reachable valuations — interval
        reduction payload."""
        reachable = False
        facts: LeafValues = None
        first = True

        def walk2(t: Tree):
            nonlocal facts, first, reachable
            if isinstance(t, Leaf):
                if t.is_bottom:
                    return
                reachable = True
                if first:
                    facts = dict(t.values)
                    first = False
                else:
                    facts = _join_values(facts, t.values)
                return
            walk2(t.low)
            walk2(t.high)

        walk2(self.root)
        if not reachable or facts is None:
            return {}
        return facts

    def bool_value(self, b: int) -> Optional[bool]:
        """Definite value of boolean ``b`` if all reachable leaves agree."""
        if b not in self.bool_order:
            return None
        lo_reachable = not _all_bottom(_restrict(self.root, b, False, self.bool_order))
        hi_reachable = not _all_bottom(_restrict(self.root, b, True, self.bool_order))
        if lo_reachable and not hi_reachable:
            return False
        if hi_reachable and not lo_reachable:
            return True
        return None

    def assign_numeric(self, cid: int, interval: Interval) -> "DecisionTree":
        """Numeric cell assigned a fresh value: update every leaf."""
        if cid not in self.numeric_cids:
            return self

        def f(values: LeafValues) -> LeafValues:
            if values is None:
                return None
            out = dict(values)
            if _is_top(interval):
                out.pop(cid, None)
            else:
                out[cid] = interval
            return out

        return self._with(_map_leaves(self.root, f))

    def forget_bool(self, b: int) -> "DecisionTree":
        return self._with(self._forget_bool_tree(b))

    def _forget_bool_tree(self, b: int) -> Tree:
        def go(t: Tree) -> Tree:
            if isinstance(t, Leaf):
                return t
            if t.var == b:
                lo = go(t.low)
                hi = go(t.high)
                return _apply(lo, hi, _join_values, self.bool_order)
            return _mk_node(t.var, go(t.low), go(t.high))

        return go(self.root)

    # -- lattice --------------------------------------------------------------------

    def join(self, other: "DecisionTree") -> "DecisionTree":
        return self._with(_apply(self.root, other.root, _join_values,
                                 self.bool_order))

    def meet(self, other: "DecisionTree") -> "DecisionTree":
        return self._with(_apply(self.root, other.root, _meet_values,
                                 self.bool_order))

    def widen(self, other: "DecisionTree", thresholds=None) -> "DecisionTree":
        return self._with(
            _apply(self.root, other.root,
                   lambda a, b: _widen_values(a, b, thresholds),
                   self.bool_order))

    def narrow(self, other: "DecisionTree") -> "DecisionTree":
        # Narrowing refines only missing (top) information: meet is sound
        # here because other is a post-fixpoint refinement of self.
        return self.meet(other)

    def includes(self, other: "DecisionTree") -> bool:
        result = True

        def chk(a: LeafValues, b: LeafValues) -> LeafValues:
            nonlocal result
            if b is None:
                return None
            if a is None:
                result = False
                return None
            for cid, iv in a.items():
                if cid not in b or not iv.includes(b[cid]):
                    result = False
            return b

        _apply(self.root, other.root, chk, self.bool_order)
        return result

    def equal(self, other: "DecisionTree") -> bool:
        return self.includes(other) and other.includes(self)

    # -- statistics -------------------------------------------------------------------

    def leaf_count(self) -> int:
        def go(t: Tree) -> int:
            if isinstance(t, Leaf):
                return 1
            return go(t.low) + go(t.high)

        return go(self.root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        def go(t: Tree, depth: int) -> str:
            pad = "  " * depth
            if isinstance(t, Leaf):
                if t.is_bottom:
                    return f"{pad}BOT"
                return f"{pad}{t.values!r}"
            return (f"{pad}b{t.var}?\n{go(t.high, depth + 1)}\n"
                    f"{go(t.low, depth + 1)}")

        return f"DecisionTree(\n{go(self.root, 1)}\n)"


def _restrict(t: Tree, b: int, value: bool, order: Sequence[int]) -> Tree:
    """Kill the valuations where ``b != value``; the node is kept with the
    dead branch at bottom so the boolean fact itself is remembered."""
    if isinstance(t, Leaf):
        return t
    if t.var == b:
        if value:
            return _mk_node(t.var, _BOTTOM_LEAF, t.high)
        return _mk_node(t.var, t.low, _BOTTOM_LEAF)
    return _mk_node(t.var, _restrict(t.low, b, value, order),
                    _restrict(t.high, b, value, order))


def _insert_bool(t: Tree, b: int, false_values: LeafValues,
                 true_values: LeafValues, order: Sequence[int]) -> Tree:
    """Split every leaf of ``t`` (which must not mention b) on ``b``."""
    pos = {v: i for i, v in enumerate(order)}
    bi = pos[b]

    def go(t: Tree) -> Tree:
        if isinstance(t, Leaf):
            if t.is_bottom:
                return t
            lo_vals = _meet_values(t.values, false_values)
            hi_vals = _meet_values(t.values, true_values)
            lo: Tree = Leaf(lo_vals) if lo_vals is not None else _BOTTOM_LEAF
            hi: Tree = Leaf(hi_vals) if hi_vals is not None else _BOTTOM_LEAF
            if isinstance(lo, Leaf) and lo.values == {}:
                lo = _TOP_LEAF
            if isinstance(hi, Leaf) and hi.values == {}:
                hi = _TOP_LEAF
            return _mk_node(b, lo, hi)
        if pos[t.var] < bi:
            return _mk_node(t.var, go(t.low), go(t.high))
        # b comes before this node in the order: insert above.
        lo_sub = _meet_tree(t, false_values, order)
        hi_sub = _meet_tree(t, true_values, order)
        return _mk_node(b, lo_sub, hi_sub)

    return go(t)


def _meet_tree(t: Tree, values: LeafValues, order: Sequence[int]) -> Tree:
    if values is None:
        return _BOTTOM_LEAF

    def f(leaf_values: LeafValues) -> LeafValues:
        return _meet_values(leaf_values, values)

    return _map_leaves(t, f)


def _all_bottom(t: Tree) -> bool:
    if isinstance(t, Leaf):
        return t.is_bottom
    return _all_bottom(t.low) and _all_bottom(t.high)
