"""Widening thresholds (Sect. 7.1.2).

The widening with thresholds does not jump straight to ±infinity but passes
through a finite ladder of values.  "In practice we have chosen T to be
(±alpha * lambda^k) for 0 <= k <= N" — as long as some threshold exceeds the
smallest invariant bound M of a stable assignment ``X := a*X + b`` (with
0 <= a < 1), the interval analysis proves X bounded.
"""

from __future__ import annotations

import math
from typing import List, Sequence

__all__ = ["ThresholdSet", "default_thresholds"]


class ThresholdSet:
    """A finite, sorted set of widening thresholds containing ±infinity."""

    def __init__(self, values: Sequence[float]):
        vs = {float(v) for v in values}
        vs.add(math.inf)
        vs.add(-math.inf)
        vs.add(0.0)
        self.values: List[float] = sorted(vs)

    @staticmethod
    def geometric(alpha: float = 1.0, lam: float = 4.0, count: int = 40) -> "ThresholdSet":
        """The paper's (±alpha*lambda^k) ladder."""
        ladder = [alpha * lam**k for k in range(count)]
        return ThresholdSet([*ladder, *(-x for x in ladder)])

    def with_extra(self, values: Sequence[float]) -> "ThresholdSet":
        return ThresholdSet([*self.values, *values])

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, x: float) -> bool:
        return float(x) in self.values

    def next_above(self, x: float) -> float:
        for t in self.values:
            if t >= x:
                return t
        return math.inf  # pragma: no cover - +inf always present

    def next_below(self, x: float) -> float:
        for t in reversed(self.values):
            if t <= x:
                return t
        return -math.inf  # pragma: no cover - -inf always present


def default_thresholds() -> ThresholdSet:
    """Default ladder: alpha=1, lambda=4, 40 rungs (covers ~1e24), plus the
    integer type bounds so counters stabilize at type range when needed."""
    base = ThresholdSet.geometric(1.0, 4.0, 40)
    type_bounds = [2.0**7, 2.0**8, 2.0**15, 2.0**16, 2.0**31, 2.0**32, 2.0**63]
    return base.with_extra([*type_bounds, *(-x for x in type_bounds)])
