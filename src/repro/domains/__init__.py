"""Arithmetic abstract domains (Sect. 6.2) and per-cell values."""

from .decision_tree import DecisionTree
from .ellipsoid import EllipsoidParams, EllipsoidValue
from .octagon import Octagon
from .thresholds import ThresholdSet, default_thresholds
from .values import CellValue, ClockInfo, bottom_value, const_value, top_value

__all__ = [
    "CellValue",
    "ClockInfo",
    "DecisionTree",
    "EllipsoidParams",
    "EllipsoidValue",
    "Octagon",
    "ThresholdSet",
    "bottom_value",
    "const_value",
    "default_thresholds",
    "top_value",
]
