"""The octagon abstract domain with sound float handling (Sect. 6.2.2).

Octagons represent conjunctions of constraints of the form ``±x ±y <= c``
in cubic time and quadratic space, using a difference-bound matrix (DBM)
over doubled variables: index ``2i`` stands for ``+v_i`` and ``2i+1`` for
``-v_i``; ``m[i][j]`` bounds ``V_j - V_i`` (so, e.g., ``m[2j][2i] = c``
encodes ``v_i - v_j <= c``) [Miné, WCRE 2001].

Following the paper's recipe for floating-point relational domains:

* the octagon itself is a *sound abstract domain for variables in the real
  field*: all internal bound computations round upward (a one-ulp outward
  nudge after each operation), so every manipulation over-approximates the
  exact real-field result;
* concrete floating-point expressions reach the octagon only as interval
  linear forms (Sect. 6.3) whose constant term already includes the
  concrete rounding errors.

One octagon abstracts one *pack* of variables (Sect. 7.2.1); packs are
small, so the cubic closure stays cheap, and the analyzer holds a map from
pack id to octagon inside the shared functional-map state.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..numeric import FloatInterval, LinearForm
from ..numeric.float_utils import add_up, div_up, mul_up

__all__ = ["Octagon", "closure_memo_stats", "configure_closure_memo",
           "configure_vectorize", "vectorize_enabled"]

_INF = math.inf

# Value-keyed closure memo (part of the incremental engine's sharing
# machinery, see repro.iterator.incremental): maps a raw matrix to its
# strongly-closed octagon.  Closure is a deterministic function of the
# matrix, so two ==-equal raw octagons have bit-identical closures and
# may share one result object.  Bounded with FIFO eviction: at capacity
# only the oldest insertions are dropped (a batch at a time), so a full
# memo sheds cold entries instead of cold-starting the whole hot set
# (it is a cache — dropping entries costs time, never correctness).
# Off by default; analyze_program enables it for incremental runs.
_CLOSURE_MEMO: Dict[bytes, "Octagon"] = {}
_CLOSURE_MEMO_MAX = 0
_CLOSURE_HITS = 0
_CLOSURE_EVICTIONS = 0


def configure_closure_memo(max_size: int) -> None:
    """Set the closure memo capacity; 0 (or negative) disables it.

    Reconfiguring to the *same* capacity keeps the memo contents (and
    the hit/eviction counters): a long-lived process analyzing many
    programs — the ``serve`` daemon — stays warm across requests, and
    closure is a pure function of the matrix alone, so entries are
    valid across programs.  Changing the capacity evicts down (or
    clears, when disabling) and resets the counters."""
    global _CLOSURE_MEMO_MAX, _CLOSURE_HITS, _CLOSURE_EVICTIONS
    if max_size == _CLOSURE_MEMO_MAX and max_size > 0:
        return
    _CLOSURE_MEMO_MAX = max_size
    _CLOSURE_HITS = 0
    _CLOSURE_EVICTIONS = 0
    if max_size <= 0:
        _CLOSURE_MEMO.clear()
    else:
        while len(_CLOSURE_MEMO) > max_size:
            del _CLOSURE_MEMO[next(iter(_CLOSURE_MEMO))]


def _evict_closure_memo() -> None:
    """Drop the oldest eighth of the memo (dicts iterate in insertion
    order, so ``next(iter(...))`` is always the oldest surviving key)."""
    global _CLOSURE_EVICTIONS
    batch = max(1, _CLOSURE_MEMO_MAX // 8)
    for _ in range(min(batch, len(_CLOSURE_MEMO))):
        del _CLOSURE_MEMO[next(iter(_CLOSURE_MEMO))]
        _CLOSURE_EVICTIONS += 1


def closure_memo_stats() -> Tuple[int, int, int]:
    """(hits, current size, evictions)."""
    return _CLOSURE_HITS, len(_CLOSURE_MEMO), _CLOSURE_EVICTIONS


# Closure kernel backend (see repro.numeric.interval_kernels for the
# contract): the numpy kernel is the default; ``--no-vectorize`` swaps
# in the pure-Python scalar oracle, which replicates the numpy kernel's
# operations — additions, one-ulp nudges, minimum picks — element by
# element in the same order, so the two backends are bit-identical and
# the knob stays out of every fingerprint.
_VECTORIZE = True


def configure_vectorize(enabled: bool) -> None:
    """Select the closure kernel backend for this process: numpy
    (default) or the scalar differential oracle."""
    global _VECTORIZE
    _VECTORIZE = bool(enabled)


def vectorize_enabled() -> bool:
    return _VECTORIZE


def _nudge_up(a: np.ndarray) -> np.ndarray:
    """One-ulp upward nudge of every finite entry (soundness of + on reals)."""
    out = np.nextafter(a, _INF)
    out[np.isinf(a)] = a[np.isinf(a)]
    return out


def _closed_matrix(m0: np.ndarray, n: int) -> np.ndarray:
    """The numpy closure kernel: Floyd-Warshall over the doubled graph
    with upward rounding, then octagonal strengthening.  Returns the
    tightened matrix; the caller decides bottom vs closed."""
    m = m0.copy()
    size = 2 * n
    for k in range(n):
        for kk in (2 * k, 2 * k + 1):
            # Floyd-Warshall step through node kk, rounding up.
            col = m[:, kk:kk + 1]
            row = m[kk:kk + 1, :]
            via = _nudge_up(col + row)
            np.minimum(m, via, out=m)
        # Combined path through both 2k and 2k+1.
        a = m[:, 2 * k:2 * k + 1] + m[2 * k, 2 * k + 1]
        b = m[2 * k + 1:2 * k + 2, :]
        via2 = _nudge_up(_nudge_up(a) + b)
        np.minimum(m, via2, out=m)
        a = m[:, 2 * k + 1:2 * k + 2] + m[2 * k + 1, 2 * k]
        b = m[2 * k:2 * k + 1, :]
        via3 = _nudge_up(_nudge_up(a) + b)
        np.minimum(m, via3, out=m)
    # Strengthening: m[i][j] <= (m[i][bar i] + m[bar j][j]) / 2.
    bar = _bar_indices(size)
    diag_i = m[np.arange(size), bar][:, None]  # m[i][bar i]
    diag_j = m[bar, np.arange(size)][None, :]  # m[bar j][j]
    half = _nudge_up(_nudge_up(diag_i + diag_j) / 2.0)
    np.minimum(m, half, out=m)
    return m


def _closed_matrix_scalar(m0: np.ndarray, n: int) -> np.ndarray:
    """Pure-Python mirror of :func:`_closed_matrix` — the scalar oracle
    behind ``--no-vectorize``.

    Bit-identity is by construction: every numpy operation of the
    vectorized kernel is replayed element-wise with the same operand
    reads (each ``via`` plane is materialized from the pre-update
    matrix, exactly like the numpy temporaries), the same IEEE-754
    scalar operations (``math.nextafter`` ≡ ``np.nextafter``), and
    ``np.minimum``'s exact pick semantics (NaN from either operand
    propagates; ties — signed zeros included — keep the first operand).
    """
    inf = _INF

    def nudge(x: float) -> float:
        # _nudge_up: nextafter toward +inf, ±inf restored, NaN kept.
        if x == inf or x == -inf:
            return x
        return math.nextafter(x, inf)

    def min2(cur: float, new: float) -> float:
        # np.minimum(cur, new): NaN propagates, ties keep ``cur``.
        if new != new:
            return new
        return new if new < cur else cur

    size = 2 * n
    m = m0.tolist()
    for k in range(n):
        for kk in (2 * k, 2 * k + 1):
            col = [m[i][kk] for i in range(size)]
            row = list(m[kk])
            for i in range(size):
                ci = col[i]
                mi = m[i]
                for j in range(size):
                    mi[j] = min2(mi[j], nudge(ci + row[j]))
        c01 = m[2 * k][2 * k + 1]
        a = [nudge(m[i][2 * k] + c01) for i in range(size)]
        b = list(m[2 * k + 1])
        for i in range(size):
            ai = a[i]
            mi = m[i]
            for j in range(size):
                mi[j] = min2(mi[j], nudge(ai + b[j]))
        c10 = m[2 * k + 1][2 * k]
        a = [nudge(m[i][2 * k + 1] + c10) for i in range(size)]
        b = list(m[2 * k])
        for i in range(size):
            ai = a[i]
            mi = m[i]
            for j in range(size):
                mi[j] = min2(mi[j], nudge(ai + b[j]))
    diag_i = [m[i][i ^ 1] for i in range(size)]
    diag_j = [m[j ^ 1][j] for j in range(size)]
    for i in range(size):
        di = diag_i[i]
        mi = m[i]
        for j in range(size):
            mi[j] = min2(mi[j], nudge(nudge(di + diag_j[j]) / 2.0))
    return np.array(m, dtype=np.float64)


def _set2(m: np.ndarray, i: int, j: int, c: float) -> None:
    """Tighten m[i][j] and its coherent mirror m[bar j][bar i] to <= c."""
    if c < m[i, j]:
        m[i, j] = c
    bi, bj = j ^ 1, i ^ 1
    if c < m[bi, bj]:
        m[bi, bj] = c


class Octagon:
    """An octagon over ``n`` pack variables (identified by position).

    Instances are treated as immutable: every operation returns a new
    octagon (possibly ``self`` when nothing changed).  ``None`` entries
    never appear; bottom is represented by a dedicated flag discovered
    during closure (a negative diagonal entry).
    """

    __slots__ = ("n", "m", "_closed", "_bottom", "_closed_cache")

    #: Number of cubic Floyd-Warshall closures actually run (all
    #: instances).  Monitored by tests asserting the cache is consumed.
    closure_computations = 0

    def __init__(self, n: int, m: Optional[np.ndarray] = None,
                 closed: bool = False, bottom: bool = False):
        self.n = n
        if m is None:
            m = np.full((2 * n, 2 * n), _INF, dtype=np.float64)
            np.fill_diagonal(m, 0.0)
        self.m = m
        self._closed = closed
        self._bottom = bottom
        self._closed_cache: Optional["Octagon"] = None

    # -- serialization -----------------------------------------------------------
    #
    # Widening requires RAW (unclosed) left matrices, so pickling must
    # preserve the matrix and the ``_closed`` flag exactly; only the
    # derived closure cache is dropped.

    def __getstate__(self):
        return (self.n, self.m, self._closed, self._bottom)

    def __setstate__(self, state):
        self.n, self.m, self._closed, self._bottom = state
        self._closed_cache = None

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def top(n: int) -> "Octagon":
        return Octagon(n, closed=True)

    @staticmethod
    def make_bottom(n: int) -> "Octagon":
        return Octagon(n, closed=True, bottom=True)

    @property
    def is_bottom(self) -> bool:
        return self._bottom

    @property
    def is_top(self) -> bool:
        """Cheap top test: only the zero diagonal is finite."""
        return (not self._bottom
                and np.count_nonzero(np.isfinite(self.m)) == 2 * self.n)

    def copy(self) -> "Octagon":
        return Octagon(self.n, self.m.copy(), self._closed, self._bottom)

    # -- closure ------------------------------------------------------------------

    def closed(self) -> "Octagon":
        """Strong closure (all implied constraints made explicit), sound
        w.r.t. real arithmetic via upward rounding."""
        if self._closed or self._bottom:
            return self
        if self._closed_cache is not None:
            return self._closed_cache
        if np.count_nonzero(np.isfinite(self.m)) == 2 * self.n:
            # Top octagon (only the zero diagonal is finite): already closed.
            out = Octagon(self.n, self.m, closed=True)
            self._closed_cache = out
            return out
        key = None
        if _CLOSURE_MEMO_MAX > 0:
            key = self.m.tobytes()
            cached = _CLOSURE_MEMO.get(key)
            if cached is not None:
                global _CLOSURE_HITS
                _CLOSURE_HITS += 1
                self._closed_cache = cached
                return cached
        Octagon.closure_computations += 1
        if _VECTORIZE:
            m = _closed_matrix(self.m, self.n)
        else:
            m = _closed_matrix_scalar(self.m, self.n)
        if np.any(np.diagonal(m) < 0.0):
            out = Octagon.make_bottom(self.n)
        else:
            np.fill_diagonal(m, 0.0)
            out = Octagon(self.n, m, closed=True)
        self._closed_cache = out
        if key is not None:
            if len(_CLOSURE_MEMO) >= _CLOSURE_MEMO_MAX:
                _evict_closure_memo()
            _CLOSURE_MEMO[key] = out
        return out

    # -- lattice --------------------------------------------------------------------

    def join(self, other: "Octagon") -> "Octagon":
        if self._bottom:
            return other
        if other._bottom:
            return self
        if self is other:
            return self.closed()
        # ``closed()`` consumes ``_closed_cache`` when present, so already
        # closed operands cost nothing here; the entry-wise max of two
        # closed matrices is closed, hence the result is tagged closed and
        # never re-runs the cubic closure.
        a = self.closed()
        b = other.closed()
        return Octagon(self.n, np.maximum(a.m, b.m), closed=True)

    def meet(self, other: "Octagon") -> "Octagon":
        if self._bottom or other._bottom:
            return Octagon.make_bottom(self.n)
        return Octagon(self.n, np.minimum(self.m, other.m)).closed()

    def widen(self, other: "Octagon",
              thresholds: Optional[Sequence[float]] = None) -> "Octagon":
        """Entry-wise widening: unstable bounds jump to the next threshold
        (or infinity).  The left argument must NOT be closed before widening
        (closure can defeat termination); we widen raw matrices."""
        if self._bottom:
            return other
        if other._bottom:
            return self
        b = other.closed()
        m = self.m.copy()
        unstable = b.m > self.m
        if thresholds is None:
            m[unstable] = _INF
        else:
            ts = np.asarray(sorted(t for t in thresholds), dtype=np.float64)
            vals = b.m[unstable]
            idx = np.searchsorted(ts, vals, side="left")
            idx = np.clip(idx, 0, len(ts) - 1)
            chosen = ts[idx]
            chosen[chosen < vals] = _INF  # no threshold above: go to top
            m[unstable] = chosen
        return Octagon(self.n, m, closed=False)

    def narrow(self, other: "Octagon") -> "Octagon":
        if self._bottom or other._bottom:
            return other
        b = other.closed()
        m = self.m.copy()
        at_inf = np.isinf(m)
        m[at_inf] = b.m[at_inf]
        return Octagon(self.n, m).closed()

    def includes(self, other: "Octagon") -> bool:
        """True when other ⊆ self: every constraint of self is implied by
        the (tightest, closed) constraints of other."""
        if other._bottom:
            return True
        if self._bottom:
            return False
        if self is other:
            return True
        return bool(np.all(other.closed().m <= self.m))

    def equal(self, other: "Octagon") -> bool:
        if self._bottom or other._bottom:
            return self._bottom == other._bottom
        a, b = self.closed(), other.closed()
        return bool(np.array_equal(a.m, b.m))

    def raw_equal(self, other: "Octagon") -> bool:
        """Representation equality without closure: same raw matrix (or
        both bottom).  Sufficient for semantic equality — used by the
        incremental engine's agreement check, where a cubic closure just
        to compare would defeat the point of skipping."""
        if self._bottom or other._bottom:
            return self._bottom == other._bottom
        return self.m is other.m or bool(np.array_equal(self.m, other.m))

    # -- constraint access ------------------------------------------------------------

    def var_interval(self, i: int) -> FloatInterval:
        """Bounds for variable i implied by the octagon (after closure)."""
        if self._bottom:
            return FloatInterval.empty()
        c = self.closed()
        hi = div_up(c.m[2 * i + 1, 2 * i], 2.0)      # v_i <= m/2
        lo = -div_up(c.m[2 * i, 2 * i + 1], 2.0)     # -v_i <= m/2
        return FloatInterval.of(lo, hi)

    def sum_bound(self, i: int, j: int) -> FloatInterval:
        """Bounds for v_i + v_j."""
        if self._bottom:
            return FloatInterval.empty()
        c = self.closed()
        hi = c.m[2 * j + 1, 2 * i]   # v_i - (-v_j) = v_i + v_j <= c
        lo = -c.m[2 * j, 2 * i + 1]
        return FloatInterval.of(lo, hi)

    def diff_bound(self, i: int, j: int) -> FloatInterval:
        """Bounds for v_i - v_j."""
        if self._bottom:
            return FloatInterval.empty()
        c = self.closed()
        hi = c.m[2 * j, 2 * i]
        lo = -c.m[2 * j + 1, 2 * i + 1]
        return FloatInterval.of(lo, hi)

    def finite_constraint_count(self) -> Tuple[int, int]:
        """(additive, subtractive) finite octagonal constraints, for the
        invariant statistics of the experiment E4."""
        if self._bottom:
            return (0, 0)
        add = sub = 0
        for i in range(self.n):
            for j in range(i + 1, self.n):
                s = self.sum_bound(i, j)
                d = self.diff_bound(i, j)
                if s.is_bounded:
                    add += 1
                if d.is_bounded:
                    sub += 1
        return add, sub

    # -- transfer functions --------------------------------------------------------

    def set_var_bounds(self, i: int, iv: FloatInterval) -> "Octagon":
        """Intersect with lo <= v_i <= hi."""
        if self._bottom or iv.is_top:
            return self
        if iv.is_empty:
            return Octagon.make_bottom(self.n)
        m = self.m.copy()
        if iv.hi < _INF:
            _set2(m, 2 * i + 1, 2 * i, mul_up(2.0, iv.hi))
        if iv.lo > -_INF:
            _set2(m, 2 * i, 2 * i + 1, mul_up(2.0, -iv.lo))
        return Octagon(self.n, m).closed()

    def forget(self, i: int) -> "Octagon":
        """Project out all constraints on variable i (keep implied ones)."""
        if self._bottom:
            return self
        c = self.closed()
        m = c.m.copy()
        m[2 * i, :] = _INF
        m[2 * i + 1, :] = _INF
        m[:, 2 * i] = _INF
        m[:, 2 * i + 1] = _INF
        m[2 * i, 2 * i] = 0.0
        m[2 * i + 1, 2 * i + 1] = 0.0
        return Octagon(self.n, m, closed=True)

    def assign_interval(self, i: int, iv: FloatInterval) -> "Octagon":
        """v_i := a fresh value in ``iv`` (non-relational assignment)."""
        return self.forget(i).set_var_bounds(i, iv)

    def assign_var_plus_interval(self, i: int, j: int, delta: FloatInterval,
                                 j_bounds: Optional[FloatInterval] = None) -> "Octagon":
        """v_i := v_j + delta (the paper's 'smart' transfer for L := Z + V:
        extract V's interval and synthesize c <= L - Z <= d).

        ``j_bounds``, when given, seeds unary bounds for v_j in the same
        matrix edit so the subsequent closure derives v_i's range too.
        """
        if self._bottom:
            return self
        if delta.is_empty:
            return Octagon.make_bottom(self.n)
        if i == j:
            return self.shift_var(i, delta)
        out = self.forget(i)
        m = out.m.copy()
        # v_i - v_j <= delta.hi ; v_j - v_i <= -delta.lo
        if delta.hi < _INF:
            _set2(m, 2 * j, 2 * i, delta.hi)
        if delta.lo > -_INF:
            _set2(m, 2 * i, 2 * j, -delta.lo)
        _seed_bounds(m, j, j_bounds)
        return Octagon(self.n, m).closed()

    def assign_neg_var_plus_interval(self, i: int, j: int, delta: FloatInterval,
                                     j_bounds: Optional[FloatInterval] = None) -> "Octagon":
        """v_i := -v_j + delta (encodes v_i + v_j in [delta])."""
        if self._bottom:
            return self
        if delta.is_empty:
            return Octagon.make_bottom(self.n)
        if i == j:
            # v_i := -v_i + delta: old and new values both constrained;
            # fall back to interval assignment by the caller.
            iv = self.var_interval(i).neg().add(delta)
            return self.assign_interval(i, iv)
        out = self.forget(i)
        m = out.m.copy()
        # v_i + v_j <= delta.hi ; -(v_i + v_j) <= -delta.lo
        if delta.hi < _INF:
            _set2(m, 2 * j + 1, 2 * i, delta.hi)
        if delta.lo > -_INF:
            _set2(m, 2 * j, 2 * i + 1, -delta.lo)
        _seed_bounds(m, j, j_bounds)
        return Octagon(self.n, m).closed()

    def shift_var(self, i: int, delta: FloatInterval) -> "Octagon":
        """v_i := v_i + delta."""
        if self._bottom or delta.is_empty:
            return Octagon.make_bottom(self.n) if delta.is_empty else self
        c = self.closed()
        m = c.m.copy()
        # Row/col for +v_i: constraints V_j - v_i <= c become <= c - lo.
        lo, hi = delta.lo, delta.hi
        pos, neg = 2 * i, 2 * i + 1
        for j in range(2 * self.n):
            if j in (pos, neg):
                continue
            if m[pos, j] < _INF:  # V_j - v_i <= c  ->  c - lo
                m[pos, j] = add_up(m[pos, j], -lo) if lo > -_INF else _INF
            if m[j, pos] < _INF:  # v_i - V_j <= c  ->  c + hi
                m[j, pos] = add_up(m[j, pos], hi) if hi < _INF else _INF
            if m[neg, j] < _INF:  # V_j + v_i <= c  ->  c + hi
                m[neg, j] = add_up(m[neg, j], hi) if hi < _INF else _INF
            if m[j, neg] < _INF:  # -v_i - V_j <= c  ->  c - lo
                m[j, neg] = add_up(m[j, neg], -lo) if lo > -_INF else _INF
        # Unary bounds: v_i <= c/2 -> v_i <= c/2 + hi (stored doubled).
        if m[neg, pos] < _INF:
            m[neg, pos] = add_up(m[neg, pos], mul_up(2.0, hi)) if hi < _INF else _INF
        if m[pos, neg] < _INF:
            m[pos, neg] = add_up(m[pos, neg], mul_up(2.0, -lo)) if lo > -_INF else _INF
        return Octagon(self.n, m).closed()

    def guard_upper(self, coeffs: Dict[int, int], bound: float,
                    seed_bounds: Optional[Dict[int, FloatInterval]] = None) -> "Octagon":
        """Intersect with ``sum coeffs[i] * v_i <= bound`` where the coeffs
        are +1/-1 and at most two variables are involved.  ``seed_bounds``
        optionally installs unary bounds (pos -> interval) in the same
        edit so the closure can combine them with the new constraint."""
        if self._bottom:
            return self
        items = [(i, s) for i, s in coeffs.items() if s != 0]
        if not items or len(items) > 2:
            return self
        m = self.m.copy()
        if seed_bounds:
            for pos, iv in seed_bounds.items():
                _seed_bounds(m, pos, iv)
        if len(items) == 1:
            (i, s), = items
            if s > 0:  # v_i <= bound
                _set2(m, 2 * i + 1, 2 * i, mul_up(2.0, bound))
            else:  # -v_i <= bound
                _set2(m, 2 * i, 2 * i + 1, mul_up(2.0, bound))
        else:
            (i, si), (j, sj) = items
            if si > 0 and sj > 0:      # v_i + v_j <= bound
                _set2(m, 2 * j + 1, 2 * i, bound)
            elif si > 0 and sj < 0:    # v_i - v_j <= bound
                _set2(m, 2 * j, 2 * i, bound)
            elif si < 0 and sj > 0:    # v_j - v_i <= bound
                _set2(m, 2 * i, 2 * j, bound)
            else:                      # -v_i - v_j <= bound
                _set2(m, 2 * j, 2 * i + 1, bound)
        return Octagon(self.n, m).closed()

    def assign_linear_form(self, i: int, form: LinearForm,
                           var_index: Dict[object, int],
                           lookup) -> "Octagon":
        """Best-effort relational assignment of a linear form to v_i.

        ``var_index`` maps linear-form variable ids to pack positions;
        ``lookup(var_id)`` gives the interval of any variable (pack member
        or not).  Variables outside the pack are intervalized into the
        constant.  If exactly one pack variable remains with coefficient
        [1,1] (or [-1,-1]), a relational assignment is performed — this is
        the transfer function that proves ``c <= L - Z <= d`` in the
        paper's example.  Otherwise the assignment degrades to an interval
        assignment.
        """
        if self._bottom:
            return self
        # Split coefficients into in-pack and out-of-pack parts.
        const = form.const
        residue = FloatInterval.const(0.0)
        in_pack: List[Tuple[object, int, FloatInterval]] = []  # (vid, pos, coeff)
        for v, c in form.coeffs:
            if v in var_index:
                in_pack.append((v, var_index[v], c))
            else:
                residue = residue.add(c.mul(lookup(v)))
        const = const.add(residue)

        def pack_interval(vid, pos) -> FloatInterval:
            return self.var_interval(pos).meet(lookup(vid))

        # Identify the unit-coefficient pack variable whose choice as the
        # relational partner leaves the *narrowest* residue: for
        # b := a + o with o in [1,5] and a in [0,100], keeping b - a in
        # [1,5] is what proves the paper's L := Z + V example, whereas
        # b - o in [0,100] is nearly useless.
        candidates: List[Tuple[int, int, object]] = []  # (pos, sign, vid)
        for vid, pos, c in in_pack:
            if c.is_const and c.lo in (1.0, -1.0):
                candidates.append((pos, int(c.lo), vid))
        best = None  # (width, pos, sign, vid, delta)
        for pos, sign, vid in candidates:
            extra = FloatInterval.const(0.0)
            ok = True
            for ovid, opos, oc in in_pack:
                if opos == pos and ovid == vid:
                    continue
                extra = extra.add(oc.mul(pack_interval(ovid, opos)))
                if extra.is_top:
                    ok = False
                    break
            if not ok:
                continue
            delta = const.add(extra)
            width = delta.width() if delta.is_bounded else math.inf
            if best is None or width < best[0]:
                best = (width, pos, sign, vid, delta)
        if best is not None and best[0] < math.inf:
            _, j, sign, j_vid, delta = best
            jb = lookup(j_vid)
            if sign > 0:
                return self.assign_var_plus_interval(i, j, delta, j_bounds=jb)
            return self.assign_neg_var_plus_interval(i, j, delta, j_bounds=jb)
        # Fallback: interval assignment (intervalize every in-pack term).
        iv = const
        for vid, pos, c in in_pack:
            iv = iv.add(c.mul(pack_interval(vid, pos)))
        return self.assign_interval(i, iv)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._bottom:
            return "Octagon(bottom)"
        lines = []
        for i in range(self.n):
            lines.append(f"v{i} in {self.var_interval(i)!r}")
        return "Octagon(" + "; ".join(lines) + ")"


def _seed_bounds(m: np.ndarray, pos: int, iv: Optional[FloatInterval]) -> None:
    """Install unary bounds for the variable at ``pos`` into matrix ``m``."""
    if iv is None or iv.is_empty or iv.is_top:
        return
    if iv.hi < _INF:
        _set2(m, 2 * pos + 1, 2 * pos, mul_up(2.0, iv.hi))
    if iv.lo > -_INF:
        _set2(m, 2 * pos, 2 * pos + 1, mul_up(2.0, -iv.lo))


def _bar_indices(size: int) -> np.ndarray:
    """bar(2i) = 2i+1, bar(2i+1) = 2i."""
    idx = np.arange(size)
    return idx ^ 1

