"""Per-cell abstract values: reduced product of intervals and clock triples.

"An abstract value in an abstract cell is therefore the reduction of the
abstract values provided by each different basic abstract domain" (Sect.
6.1).  A :class:`CellValue` carries:

* an interval component (:class:`~repro.numeric.intervals.IntInterval` for
  integer cells, :class:`~repro.numeric.intervals.FloatInterval` for float
  cells) — the interval domain of Sect. 6.2.1;
* optionally a *clocked* component (Sect. 6.2.1): intervals for
  ``v - clock`` and ``v + clock`` where ``clock`` is the hidden counter of
  elapsed synchronous cycles.  With the bound on continuous operating time
  (``max_clock``), the reduction ``v <= (v - clock) + max_clock`` bounds
  event counters that would otherwise appear to overflow.

The module also defines :class:`ClockInfo`, the abstract value of the
hidden clock itself.

The domain layer — this module, the relational domains, and their
``transfer``/``includes``/``join``/guard operations — is the trusted
computing base of result certification (``repro.certify``): the
independent checker re-derives every claimed invariant through these
operations alone, so a fixpoint-engine bug cannot forge a certificate,
but a containment bug *here* could.  These operations are pinned
independently by the hypothesis property tests
(``tests/test_domain_properties.py``, ``tests/test_intervals.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..numeric import FloatInterval, IntInterval

__all__ = ["CellValue", "ClockInfo", "interval_for_type", "top_value",
           "bottom_value", "const_value"]

Interval = Union[IntInterval, FloatInterval]


@dataclass(frozen=True)
class ClockInfo:
    """Abstract value of the hidden clock variable."""

    range: IntInterval  # current clock value range
    max_clock: Optional[int]  # bound on total ticks (None when unbounded)

    @staticmethod
    def initial(max_clock: Optional[int]) -> "ClockInfo":
        return ClockInfo(IntInterval.const(0), max_clock)

    def tick(self) -> "ClockInfo":
        advanced = self.range.add(IntInterval.const(1))
        if self.max_clock is not None:
            advanced = advanced.meet(IntInterval.of(0, self.max_clock))
        return ClockInfo(advanced, self.max_clock)

    def join(self, other: "ClockInfo") -> "ClockInfo":
        return ClockInfo(self.range.join(other.range), self.max_clock)

    def widen(self, other: "ClockInfo") -> "ClockInfo":
        widened = self.range.widen(other.range)
        if self.max_clock is not None:
            widened = widened.meet(IntInterval.of(0, self.max_clock))
        return ClockInfo(widened, self.max_clock)


@dataclass(frozen=True)
class CellValue:
    """The reduced-product abstract value of one cell.

    ``itv`` is never None; ``minus_clock``/``plus_clock`` are None when the
    clocked domain is disabled or the cell is not clock-tracked.
    For float cells the clocked components are unused (counters are
    integers in the family).
    """

    itv: Interval
    minus_clock: Optional[IntInterval] = None  # abstraction of v - clock
    plus_clock: Optional[IntInterval] = None   # abstraction of v + clock

    # -- predicates -------------------------------------------------------------

    @property
    def is_bottom(self) -> bool:
        return self.itv.is_empty

    @property
    def is_float(self) -> bool:
        return isinstance(self.itv, FloatInterval)

    @property
    def has_clock(self) -> bool:
        return self.minus_clock is not None

    def float_range(self) -> FloatInterval:
        """The value range as a float interval (sound for int cells)."""
        if isinstance(self.itv, FloatInterval):
            return self.itv
        return self.itv.to_float_interval()

    # -- lattice ----------------------------------------------------------------

    def join(self, other: "CellValue") -> "CellValue":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return CellValue(
            self.itv.join(other.itv),
            _join_opt(self.minus_clock, other.minus_clock),
            _join_opt(self.plus_clock, other.plus_clock),
        )

    def meet(self, other: "CellValue") -> "CellValue":
        return CellValue(
            self.itv.meet(other.itv),
            _meet_opt(self.minus_clock, other.minus_clock),
            _meet_opt(self.plus_clock, other.plus_clock),
        )

    def widen(self, other: "CellValue",
              thresholds: Optional[Sequence[float]] = None) -> "CellValue":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        # The clocked components drift by one per tick when unstable, so a
        # threshold ladder would be climbed rung by rung: widen them
        # straight to infinity (their useful bounds — e.g. v - clock <= 0
        # for a once-per-cycle counter — are the stable ones anyway).
        return CellValue(
            self.itv.widen(other.itv, thresholds),
            _widen_opt(self.minus_clock, other.minus_clock, None),
            _widen_opt(self.plus_clock, other.plus_clock, None),
        )

    def narrow(self, other: "CellValue") -> "CellValue":
        if self.is_bottom or other.is_bottom:
            return other
        return CellValue(
            self.itv.narrow(other.itv),
            _narrow_opt(self.minus_clock, other.minus_clock),
            _narrow_opt(self.plus_clock, other.plus_clock),
        )

    def includes(self, other: "CellValue") -> bool:
        if other.is_bottom:
            return True
        if self.is_bottom:
            return False
        if not self.itv.includes(other.itv):
            return False
        if self.minus_clock is not None:
            if other.minus_clock is None or not self.minus_clock.includes(other.minus_clock):
                return False
        if self.plus_clock is not None:
            if other.plus_clock is None or not self.plus_clock.includes(other.plus_clock):
                return False
        return True

    # -- clocked-domain operations ------------------------------------------------

    def with_clock_tracking(self, clock: ClockInfo) -> "CellValue":
        """Start tracking v-clock and v+clock for this (integer) value."""
        if not isinstance(self.itv, IntInterval):
            return self
        c = clock.range
        return CellValue(
            self.itv,
            self.itv.sub(c),
            self.itv.add(c),
        )

    def on_clock_tick(self) -> "CellValue":
        """Adjust the clocked components when the hidden clock increments.

        ``v`` is unchanged, so ``v - clock`` decreases by 1 and
        ``v + clock`` increases by 1.
        """
        if self.minus_clock is None:
            return self
        one = IntInterval.const(1)
        return CellValue(self.itv, self.minus_clock.sub(one),
                         self.plus_clock.add(one))

    def shift_clocked(self, delta: IntInterval) -> "CellValue":
        """The cell was incremented by ``delta`` (clock unchanged)."""
        if self.minus_clock is None:
            return self
        return CellValue(self.itv, self.minus_clock.add(delta),
                         self.plus_clock.add(delta))

    def reduce_with_clock(self, clock: ClockInfo) -> "CellValue":
        """Reduction step: intersect v with (v-clock)+clock and (v+clock)-clock.

        This is where a counter incremented at most once per cycle gets
        bounded by the maximal operating time (Sect. 6.2.1).
        """
        if self.minus_clock is None or not isinstance(self.itv, IntInterval):
            return self
        c = clock.range
        if clock.max_clock is not None:
            c = c.meet(IntInterval.of(0, clock.max_clock))
        candidates = self.itv
        candidates = candidates.meet(self.minus_clock.add(c))
        candidates = candidates.meet(self.plus_clock.sub(c))
        if candidates.is_empty:
            # The clocked components were approximated independently of the
            # interval; an empty meet means the reduction over-constrained —
            # fall back to the plain interval (sound, less precise).
            return CellValue(self.itv, self.minus_clock, self.plus_clock)
        return CellValue(candidates, self.minus_clock, self.plus_clock)

    def drop_clock(self) -> "CellValue":
        if self.minus_clock is None:
            return self
        return CellValue(self.itv)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [repr(self.itv)]
        if self.minus_clock is not None:
            parts.append(f"-clk:{self.minus_clock!r}")
            parts.append(f"+clk:{self.plus_clock!r}")
        return f"CellValue({', '.join(parts)})"


def _join_opt(a, b):
    if a is None or b is None:
        return None
    return a.join(b)


def _meet_opt(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return a.meet(b)


def _widen_opt(a, b, thresholds):
    if a is None or b is None:
        return None
    return a.widen(b, thresholds)


def _narrow_opt(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return a.narrow(b)


def interval_for_type(ctype) -> Interval:
    """Top interval appropriate for a cell's C type (type-range aware)."""
    from ..frontend.c_types import EnumType, FloatType, IntType

    if isinstance(ctype, FloatType):
        return FloatInterval.of(-ctype.fmt.max_value, ctype.fmt.max_value)
    if isinstance(ctype, (IntType, EnumType)):
        return IntInterval.of(ctype.min_value, ctype.max_value)
    raise TypeError(f"no interval for type {ctype}")


def top_value(ctype) -> CellValue:
    return CellValue(interval_for_type(ctype))


def bottom_value(ctype) -> CellValue:
    from ..frontend.c_types import FloatType

    if isinstance(ctype, FloatType):
        return CellValue(FloatInterval.empty())
    return CellValue(IntInterval.empty())


def const_value(ctype, value) -> CellValue:
    from ..frontend.c_types import FloatType

    if isinstance(ctype, FloatType):
        return CellValue(FloatInterval.const(float(value)))
    return CellValue(IntInterval.const(int(value)))
